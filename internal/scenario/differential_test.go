package scenario

import (
	"context"
	"encoding/json"
	"testing"

	"supercharged/internal/sim"
)

// The partial-deployment refactor must be invisible at its boundaries:
// a deployment of one supercharged router is the classic supercharged
// run, and a deployment of one vanilla router is the standalone
// baseline, byte-for-byte in the result JSON. This is checked for every
// committed builtin at several seeds — the strongest statement that the
// multi-router lab is a strict generalization, not a reimplementation
// with drift.
//
// The spec's own deployment/table knobs are cleared first: the
// differential compares deployment compilation, holding everything else
// (events, cost, replicas, feed) fixed on both sides.
func TestDeploymentDifferential(t *testing.T) {
	const prefixes, flows = 800, 30
	run := func(t *testing.T, cfg sim.TimelineConfig) []byte {
		t.Helper()
		res, err := sim.RunTimeline(context.Background(), cfg)
		if err != nil {
			t.Fatalf("RunTimeline: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	for _, name := range Names() {
		spec, ok := Lookup(name)
		if !ok {
			t.Fatalf("builtin %s vanished", name)
		}
		spec.Routers = nil
		spec.Table = "" // synthetic feed: the table axis is exec-layer, not compile-layer
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				// Full deployment (k=N): one supercharged router declared
				// explicitly ≡ the classic implicit supercharged router.
				classic := run(t, spec.compile(sim.Supercharged, prefixes, flows, seed))
				full := spec.compile(sim.Supercharged, prefixes, flows, seed)
				full.Routers = []sim.RouterSpec{{Supercharged: true}}
				if got := run(t, full); string(got) != string(classic) {
					t.Fatalf("seed %d: explicit supercharged deployment diverged from classic run\n got: %s\nwant: %s",
						seed, got, classic)
				}
				// Zero deployment (k=0): one vanilla router under supercharged
				// mode ≡ the standalone baseline.
				standalone := run(t, spec.compile(sim.Standalone, prefixes, flows, seed))
				zero := spec.compile(sim.Supercharged, prefixes, flows, seed)
				zero.Routers = []sim.RouterSpec{{Supercharged: false}}
				if got := run(t, zero); string(got) != string(standalone) {
					t.Fatalf("seed %d: vanilla-only deployment diverged from standalone baseline\n got: %s\nwant: %s",
						seed, got, standalone)
				}
			}
		})
	}
}
