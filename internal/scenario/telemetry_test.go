package scenario

import (
	"context"
	"testing"
	"time"

	"supercharged/internal/metrics"
	"supercharged/internal/sim"
	"supercharged/internal/telemetry"
)

// The trace is not decoration: its flow-converged spans must carry the
// run's actual measurements. Reconstructing each event's convergence
// summary from span durations alone has to land within one virtual
// millisecond of the report's numbers (they are the same quantized gaps,
// so in practice they match exactly).
func TestTraceReconstructsReportedConvergence(t *testing.T) {
	spec, ok := Lookup("paper-fig5")
	if !ok {
		t.Fatal("paper-fig5 not registered")
	}
	for _, mode := range []sim.Mode{sim.Standalone, sim.Supercharged} {
		tr := telemetry.NewTrace()
		rep, err := RunOneInstrumented(context.Background(), spec, mode, 2000, 0, 1,
			Instrumentation{Trace: tr})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}

		// flow-converged spans live on the tid of their event (idx+1).
		byEvent := map[int][]time.Duration{}
		for _, s := range tr.Spans() {
			if s.Name == "flow-converged" {
				byEvent[s.TID-1] = append(byEvent[s.TID-1], s.Dur)
			}
		}

		const tolMS = 1.0 // acceptance bound: one virtual millisecond
		for _, ev := range rep.Events {
			if ev.Convergence == nil {
				continue
			}
			durs := byEvent[ev.Index]
			if len(durs) != ev.Convergence.Samples {
				t.Fatalf("%v event %d: %d converge spans, report has %d samples",
					mode, ev.Index, len(durs), ev.Convergence.Samples)
			}
			s := metrics.SummarizeDurations(durs)
			checks := []struct {
				name       string
				span, want float64
			}{
				{"min", s.Min * 1e3, ev.Convergence.MinMS},
				{"p50", s.Median * 1e3, ev.Convergence.P50MS},
				{"p95", s.P95 * 1e3, ev.Convergence.P95MS},
				{"max", s.Max * 1e3, ev.Convergence.MaxMS},
			}
			for _, c := range checks {
				if diff := c.span - c.want; diff > tolMS || diff < -tolMS {
					t.Errorf("%v event %d: trace %s = %.3fms, report %.3fms (|Δ| > %vms)",
						mode, ev.Index, c.name, c.span, c.want, tolMS)
				}
			}
		}
		if len(byEvent) == 0 {
			t.Fatalf("%v: no flow-converged spans recorded", mode)
		}
	}
}

// The pipeline spans of one event must be causally ordered in virtual
// time: the event fires, the failure is detected, flows converge.
func TestTracePipelineOrdering(t *testing.T) {
	spec, ok := Lookup("paper-fig5")
	if !ok {
		t.Fatal("paper-fig5 not registered")
	}
	tr := telemetry.NewTrace()
	if _, err := RunOneInstrumented(context.Background(), spec, sim.Supercharged, 1000, 0, 1,
		Instrumentation{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	var eventAt, detectAt, convEnd time.Duration = -1, -1, -1
	for _, s := range tr.Spans() {
		switch s.Name {
		case "event":
			eventAt = s.Start
		case "failure-detected":
			detectAt = s.Start + s.Dur
		case "flow-converged":
			if end := s.Start + s.Dur; end > convEnd {
				convEnd = end
			}
		}
	}
	if eventAt < 0 || detectAt < 0 || convEnd < 0 {
		t.Fatalf("pipeline spans missing: event=%v detect=%v conv=%v", eventAt, detectAt, convEnd)
	}
	if !(eventAt <= detectAt && detectAt <= convEnd) {
		t.Fatalf("pipeline out of order: event=%v detect=%v convergence-end=%v", eventAt, detectAt, convEnd)
	}

	// Instrumented and bare runs must report identical measurements:
	// telemetry observes, it never steers.
	bare, err := RunOne(context.Background(), spec, sim.Supercharged, 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := RunOneInstrumented(context.Background(), spec, sim.Supercharged, 1000, 0, 1,
		Instrumentation{Trace: telemetry.NewTrace(), Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if bare.ElapsedMS != instr.ElapsedMS || len(bare.Events) != len(instr.Events) {
		t.Fatalf("instrumentation changed the run: bare %+v vs instrumented %+v", bare, instr)
	}
	for i := range bare.Events {
		b, n := bare.Events[i], instr.Events[i]
		if b.DetectMS != n.DetectMS || b.Affected != n.Affected ||
			(b.Convergence != nil) != (n.Convergence != nil) ||
			(b.Convergence != nil && *b.Convergence != *n.Convergence) {
			t.Fatalf("event %d drifted under instrumentation:\nbare  %+v\ninstr %+v", i, b, n)
		}
	}
}
