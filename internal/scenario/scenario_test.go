package scenario

import (
	"strings"
	"testing"
	"time"

	"supercharged/internal/sim"
)

// validSpec returns a minimal well-formed spec to mutate per test case.
func validSpec() Spec {
	return Spec{
		Name:  "test-valid",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	}
}

func TestValidateAcceptsWellFormedSpec(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "empty name"},
		{"whitespace name", func(s *Spec) { s.Name = "bad name" }, "whitespace"},
		{"empty topology", func(s *Spec) { s.Peers = nil }, "at least 2 peers"},
		{"single peer", func(s *Spec) { s.Peers = s.Peers[:1] }, "at least 2 peers"},
		{"duplicate peer names", func(s *Spec) { s.Peers[1].Name = "R2" }, "duplicate peer"},
		{"negative peer feed", func(s *Spec) { s.Peers[0].Prefixes = -1 }, "negative feed size"},
		{"unknown event kind", func(s *Spec) { s.Events[0].Kind = "meteor-strike" }, "unknown kind"},
		{"event before t=0", func(s *Spec) { s.Events[0].At = -time.Second }, "before t=0"},
		{"event missing peer", func(s *Spec) { s.Events[0].Peer = "" }, "missing peer"},
		{"event unknown peer", func(s *Spec) { s.Events[0].Peer = "R9" }, "unknown peer"},
		{"flap without hold", func(s *Spec) {
			s.Events[0] = Event{At: time.Second, Kind: sim.EventLinkFlap, Peer: "R2"}
		}, "Hold must be positive"},
		{"withdraw fraction zero", func(s *Spec) {
			s.Events[0] = Event{At: time.Second, Kind: sim.EventPartialWithdraw, Peer: "R2"}
		}, "outside (0, 1]"},
		{"withdraw fraction above one", func(s *Spec) {
			s.Events[0] = Event{At: time.Second, Kind: sim.EventPartialWithdraw, Peer: "R2", Fraction: 1.5}
		}, "outside (0, 1]"},
		{"unknown detection", func(s *Spec) { s.Events[0].Detection = "psychic" }, "unknown detection"},
		{"negative group size", func(s *Spec) { s.GroupSize = -1 }, "negative group size"},
		{"negative prefixes", func(s *Spec) { s.Prefixes = -5 }, "negative prefix count"},
		{"negative flows", func(s *Spec) { s.Flows = -5 }, "negative flow count"},
		{"non-positive sweep size", func(s *Spec) { s.PrefixSweep = []int{1000, 0} }, "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("spec %+v validated; want error containing %q", s, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

func TestCompileCarriesTopologyAndTimeline(t *testing.T) {
	s := Spec{
		Name:      "test-compile",
		Peers:     []Peer{{Name: "A", Weight: 500}, {Name: "B", Prefixes: 123}},
		GroupSize: 3,
		Events: []Event{
			{At: 2 * time.Second, Kind: sim.EventLinkFlap, Peer: "A", Hold: 50 * time.Millisecond},
		},
		HoldTimer: 10 * time.Second,
	}
	cfg := s.compile(sim.Supercharged, 4000, 42, 7)
	if cfg.Mode != sim.Supercharged || cfg.NumPrefixes != 4000 || cfg.NumFlows != 42 || cfg.Seed != 7 {
		t.Fatalf("base config wrong: %+v", cfg.Config)
	}
	if cfg.GroupSize != 3 || cfg.HoldTimer != 10*time.Second {
		t.Fatalf("group size / hold timer wrong: %+v", cfg)
	}
	if len(cfg.Peers) != 2 || cfg.Peers[0].Weight != 500 || cfg.Peers[1].Prefixes != 123 {
		t.Fatalf("peers wrong: %+v", cfg.Peers)
	}
	if len(cfg.Events) != 1 || cfg.Events[0].Kind != sim.EventLinkFlap || cfg.Events[0].Hold != 50*time.Millisecond {
		t.Fatalf("events wrong: %+v", cfg.Events)
	}
}
