package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"supercharged/internal/sim"
)

// TestSameSeedSameReport: the determinism contract — the whole report,
// byte for byte.
func TestSameSeedSameReport(t *testing.T) {
	spec, _ := Lookup("double-failure")
	opts := Options{Prefixes: 2000, Flows: 50, Seed: 42}
	a, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same seed, different reports:\n%s\nvs\n%s", aj, bj)
	}
}

func TestPaperFig5FlatVsLinear(t *testing.T) {
	spec, ok := Lookup("paper-fig5")
	if !ok {
		t.Fatal("paper-fig5 not registered")
	}
	// Trim the sweep for test time; the shape survives.
	spec.PrefixSweep = []int{1000, 10_000}
	rep, err := Run(context.Background(), spec, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	max := map[string]map[int]float64{}
	for _, run := range rep.Runs {
		if run.Events[0].Convergence == nil {
			t.Fatalf("run %s@%d: no convergence", run.Mode, run.Prefixes)
		}
		if max[run.Mode] == nil {
			max[run.Mode] = map[int]float64{}
		}
		max[run.Mode][run.Prefixes] = run.Events[0].Convergence.MaxMS
	}
	std, sup := max[sim.Standalone.String()], max[sim.Supercharged.String()]
	// Standalone grows linearly: 9000 more entries at ~0.28 ms each.
	if growth := std[10_000] - std[1000]; growth < 1500 || growth > 3500 {
		t.Fatalf("standalone growth %v ms over 9k entries; want ~2520", growth)
	}
	// Supercharged stays flat and fast at both sizes.
	for n, ms := range sup {
		if ms > 160 {
			t.Fatalf("supercharged @%d: %v ms, want ≤160", n, ms)
		}
	}
	if spread := sup[10_000] - sup[1000]; spread > 30 || spread < -30 {
		t.Fatalf("supercharged spread %v ms across sizes; not flat", spread)
	}
}

func TestDoubleFailureBothEventsConverge(t *testing.T) {
	rep, err := RunNamed(context.Background(), "double-failure", Options{
		Modes: []sim.Mode{sim.Supercharged}, Prefixes: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := rep.Runs[0]
	if len(run.Events) != 2 {
		t.Fatalf("events %d, want 2", len(run.Events))
	}
	for _, ev := range run.Events {
		if ev.Affected == 0 || ev.Recovered != ev.Affected || ev.Unrecovered != 0 {
			t.Fatalf("event %d: affected %d recovered %d unrecovered %d",
				ev.Index, ev.Affected, ev.Recovered, ev.Unrecovered)
		}
		if ev.Convergence.MaxMS > 160 {
			t.Fatalf("event %d: max %v ms, want ≤160 (constant per-failure rewrite)",
				ev.Index, ev.Convergence.MaxMS)
		}
	}
	if run.RuleRewrites == 0 {
		t.Fatal("no rule rewrites recorded")
	}
}

func TestRuleLossOnlyHurtsSupercharged(t *testing.T) {
	rep, err := RunNamed(context.Background(), "rule-loss", Options{Prefixes: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range rep.Runs {
		ev := run.Events[0]
		if run.Mode == sim.Supercharged.String() {
			if ev.Affected == 0 || ev.Unrecovered != 0 {
				t.Fatalf("supercharged rule-loss: affected %d unrecovered %d", ev.Affected, ev.Unrecovered)
			}
			if ev.Convergence.MaxMS > 100 {
				t.Fatalf("resync took %v ms; want fast constant recovery", ev.Convergence.MaxMS)
			}
		} else if ev.Affected != 0 {
			t.Fatalf("standalone affected by rule loss: %d flows", ev.Affected)
		}
	}
}

func TestOptionsPrefixesOverridesSweep(t *testing.T) {
	spec, _ := Lookup("paper-fig5")
	rep, err := Run(context.Background(), spec, Options{Modes: []sim.Mode{sim.Supercharged}, Prefixes: 1500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].Prefixes != 1500 {
		t.Fatalf("override ignored: %d runs, first at %d prefixes", len(rep.Runs), rep.Runs[0].Prefixes)
	}
}

func TestCSVAndTableRender(t *testing.T) {
	rep, err := RunNamed(context.Background(), "backup-then-primary", Options{
		Modes: []sim.Mode{sim.Supercharged}, Prefixes: 1000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+2 { // header + one row per event
		t.Fatalf("CSV lines %d, want 3:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "scenario,mode,prefixes") {
		t.Fatalf("CSV header: %q", lines[0])
	}
	if table := rep.RenderTable(); !strings.Contains(table, "peer-down") {
		t.Fatalf("table render missing events:\n%s", table)
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	s := validSpec()
	s.Events[0].At = -time.Second
	if _, err := Run(context.Background(), s, Options{Prefixes: 1000}); err == nil {
		t.Fatal("Run accepted an invalid spec")
	}
}

func TestSizes(t *testing.T) {
	sweep := Spec{PrefixSweep: []int{1000, 2000}, Prefixes: 7000}
	if got := sweep.Sizes(0); len(got) != 2 || got[0] != 1000 || got[1] != 2000 {
		t.Fatalf("Sizes(0) = %v, want the spec sweep", got)
	}
	if got := sweep.Sizes(500); len(got) != 1 || got[0] != 500 {
		t.Fatalf("Sizes(500) = %v, want the override alone", got)
	}
	if got := (Spec{Prefixes: 7000}).Sizes(0); len(got) != 1 || got[0] != 7000 {
		t.Fatalf("Sizes(0) = %v, want the spec default", got)
	}
	if got := (Spec{}).Sizes(0); len(got) != 1 || got[0] != DefaultPrefixes {
		t.Fatalf("Sizes(0) = %v, want the executor default", got)
	}
}

// TestRunOneMatchesRun: RunOne is the sweep's unit of work — it must
// measure exactly what the sequential executor measures for the same
// (mode, size, seed) cell.
func TestRunOneMatchesRun(t *testing.T) {
	spec, _ := Lookup("double-failure")
	opts := Options{Modes: []sim.Mode{sim.Supercharged}, Prefixes: 1200, Seed: 7}
	whole, err := Run(context.Background(), spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunOne(context.Background(), spec, sim.Supercharged, 1200, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Report{Runs: []RunReport{whole.Runs[0]}}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Report{Runs: []RunReport{one}}).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("RunOne diverges from Run:\n%s\nvs\n%s", got, want)
	}
}

func TestRunOneRejectsInvalidSpec(t *testing.T) {
	s := validSpec()
	s.Events[0].At = -time.Second
	if _, err := RunOne(context.Background(), s, sim.Standalone, 1000, 0, 1); err == nil {
		t.Fatal("RunOne accepted an invalid spec")
	}
}
