// Package scenario is the declarative failure-scenario engine over the
// convergence lab: a scripted timeline of events (peer down/up, link
// flaps, partial withdraws, burst re-announcements, switch-rule loss,
// controller restarts, BFD- vs hold-timer-detected failures) compiled
// into internal/sim timeline runs over parameterized topologies, executed
// in Standalone and Supercharged modes, with per-event convergence
// metrics reported as JSON or CSV.
//
// The paper measures exactly one event — a single primary-peer failure on
// the Fig. 4 setup. This package generalizes that one-shot experiment
// into a testbed: a Spec names a topology (N provider peers with
// per-peer feed sizes and preferences) and an event timeline; the
// registry holds named built-in scenarios (paper-fig5, double-failure,
// flap-storm, backup-then-primary, partial-withdraw, ...); Run drives the
// virtual-clock lab and collects what each event did to the probed flows.
//
// RunOne executes a single (mode, table size) cell — the independent unit
// of work internal/sweep distributes across worker pools. Every built-in
// is documented in docs/scenarios.md with its paper mapping and expected
// qualitative outcome.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"supercharged/internal/sim"
)

// sizeTiers names the standard table-size ladders a sweep can ask for by
// name instead of spelling out prefix counts. The xl tier is the
// full-Internet scale the ROADMAP targets (~1M prefixes; the paper's own
// sweep stops at 500k) — expensive enough that the builtin covering it
// caps its seed axis (Spec.MaxSeeds) to keep CI within budget.
var sizeTiers = map[string][]int{
	"s":  {1_000},
	"m":  {5_000, 10_000},
	"l":  {50_000, 100_000},
	"xl": {100_000, 1_000_000},
}

// TierSizes resolves a named size tier to its table sizes (a copy).
func TierSizes(name string) ([]int, bool) {
	sizes, ok := sizeTiers[name]
	if !ok {
		return nil, false
	}
	return append([]int(nil), sizes...), true
}

// Tiers returns the known size-tier names, sorted.
func Tiers() []string {
	names := make([]string, 0, len(sizeTiers))
	for name := range sizeTiers {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Kind aliases the simulator's event kinds; see sim.EventKind for the
// catalogue.
type Kind = sim.EventKind

// Detection aliases the simulator's failure-detection selector.
type Detection = sim.Detection

// Peer declares one provider of the scenario topology.
type Peer struct {
	// Name identifies the peer in events (e.g. "R2").
	Name string `json:"name"`
	// Weight is the router's preference (higher wins; 0 = auto-descending
	// by position, so the first peer is the primary).
	Weight uint32 `json:"weight,omitempty"`
	// Prefixes caps this peer's advertised feed (0 = the full table).
	Prefixes int `json:"prefixes,omitempty"`
	// Offset rotates the peer's feed window to start at this table index
	// (modulo the table size, wrapping around). Staggered windows give a
	// many-peer fabric its per-prefix path diversity — and its many
	// distinct backup-groups.
	Offset int `json:"offset,omitempty"`
}

// Router declares one edge router of the scenario deployment. A spec
// without routers runs the classic single router; a spec mixing
// supercharged and vanilla routers models partial SDN deployment and
// reports per-class convergence.
type Router struct {
	// Name identifies the router ("" = E1, E2, ... by position).
	Name string `json:"name,omitempty"`
	// Supercharged puts the controller in front of this router in
	// supercharged mode. Standalone mode ignores the flag: the baseline
	// deployment has no SDN anywhere.
	Supercharged bool `json:"supercharged"`
}

// Event is one scripted event of the scenario timeline.
type Event struct {
	// At schedules the event relative to traffic steady-state.
	At time.Duration `json:"at"`
	// Kind names the event type (see sim.KnownEventKinds).
	Kind Kind `json:"kind"`
	// Peer names the affected peer (required for peer/link events).
	Peer string `json:"peer,omitempty"`
	// Peers names the members of a shared-risk link group (srlg-down
	// only, ≥ 2 distinct peers taken down by the one event).
	Peers []string `json:"peers,omitempty"`
	// Hold is the link-flap downtime, controller-restart duration,
	// session-reset re-establishment time (0 = the 1 s default) or
	// update-noise duration.
	Hold time.Duration `json:"hold,omitempty"`
	// Fraction is the partial-withdraw share of the peer's feed, (0, 1].
	Fraction float64 `json:"fraction,omitempty"`
	// Detection selects bfd (default) or hold-timer failure detection.
	Detection Detection `json:"detection,omitempty"`
	// Graceful preserves forwarding state across a session-reset
	// (RFC 4724 graceful restart).
	Graceful bool `json:"graceful,omitempty"`
	// Rate is the update-noise intensity in UPDATEs per second.
	Rate int `json:"rate,omitempty"`
}

// Spec is one declarative scenario: a named topology plus timeline.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Paper maps the scenario onto the source paper: the section, figure
	// or benchmark whose claim it exercises. Every builtin sets it;
	// docs/scenarios.md is generated from it and CI fails on drift.
	Paper string `json:"paper,omitempty"`
	// Expect states the qualitative outcome a correct reproduction shows
	// (and, for the boundary scenarios, what it must NOT show).
	Expect string  `json:"expect,omitempty"`
	Peers  []Peer  `json:"peers"`
	Events []Event `json:"events"`
	// GroupSize is the backup-group tuple size k (0 = 2, the paper's).
	GroupSize int `json:"group_size,omitempty"`
	// Prefixes is the default table size when no sweep or override is
	// given (0 = executor default).
	Prefixes int `json:"prefixes,omitempty"`
	// Flows is the probed flow count (0 = the lab's 100).
	Flows int `json:"flows,omitempty"`
	// PrefixSweep runs the scenario once per listed table size — how
	// paper-fig5 shows flat-vs-linear scaling.
	PrefixSweep []int `json:"prefix_sweep,omitempty"`
	// MaxSeeds caps how many of a sweep's seeds run this scenario
	// (0 = no cap). The xl-tier builtin sets 1: a 1M-prefix lab is
	// deterministic per seed but costs real wall-clock, and the CI
	// budget spends its seed repetitions on the cheap sizes.
	MaxSeeds int `json:"max_seeds,omitempty"`
	// HoldTimer overrides the hold-timer detection latency (0 = 90 s).
	HoldTimer time.Duration `json:"hold_timer,omitempty"`
	// Table names an MRT TABLE_DUMP_V2 dump (plain or gzip) to replay
	// instead of the synthetic feed: every run announces the dump's
	// first Prefixes routes. Relative paths resolve against the working
	// directory and then upward (so tests and CI find repo-root
	// testdata from any package directory). The path is part of the
	// spec — and therefore of the result-store cache key — but the dump
	// is only opened at run time, so registering a table-backed builtin
	// does not require the file to exist.
	Table string `json:"table,omitempty"`

	// Routers declares the deployment (nil = one router per mode). Only
	// supercharged-mode runs honor the class mix; the standalone baseline
	// is always SDN-free.
	Routers []Router `json:"routers,omitempty"`
	// Cost prices the controller's work (nil = the free controller of
	// the original experiments; see sim.ControllerCost).
	Cost *sim.ControllerCost `json:"cost,omitempty"`
	// Replicas, Takeover and Durable parameterize controller-failover
	// events (see sim.TimelineConfig).
	Replicas int           `json:"replicas,omitempty"`
	Takeover time.Duration `json:"takeover,omitempty"`
	Durable  bool          `json:"durable,omitempty"`
}

// Validate checks the spec without running it: scenario-level shape here,
// topology and event rules via the simulator's timeline validation.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if strings.ContainsAny(s.Name, " \t\n") {
		return fmt.Errorf("scenario %q: name must not contain whitespace", s.Name)
	}
	if s.GroupSize < 0 {
		return fmt.Errorf("scenario %q: negative group size %d", s.Name, s.GroupSize)
	}
	if s.Prefixes < 0 {
		return fmt.Errorf("scenario %q: negative prefix count %d", s.Name, s.Prefixes)
	}
	if s.Flows < 0 {
		return fmt.Errorf("scenario %q: negative flow count %d", s.Name, s.Flows)
	}
	if s.MaxSeeds < 0 {
		return fmt.Errorf("scenario %q: negative seed cap %d", s.Name, s.MaxSeeds)
	}
	for _, n := range s.PrefixSweep {
		if n <= 0 {
			return fmt.Errorf("scenario %q: sweep size %d must be positive", s.Name, n)
		}
	}
	cfg := s.compile(sim.Standalone, 1000, 0, 1)
	if err := cfg.Validate(); err != nil {
		return fmt.Errorf("scenario %q: %w", s.Name, err)
	}
	// The standalone compile drops the deployment/replica axes, so specs
	// using them are validated through the supercharged compile too.
	if len(s.Routers) > 0 || s.Replicas != 0 || s.Takeover != 0 || s.Cost != nil {
		cfg := s.compile(sim.Supercharged, 1000, 0, 1)
		if err := cfg.Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
	}
	return nil
}

// compile lowers the spec to a simulator timeline configuration.
func (s Spec) compile(mode sim.Mode, prefixes, flows int, seed int64) sim.TimelineConfig {
	cfg := sim.TimelineConfig{
		Config:    sim.DefaultConfig(mode, prefixes),
		HoldTimer: s.HoldTimer,
	}
	cfg.Seed = seed
	if flows > 0 {
		cfg.NumFlows = flows
	} else if s.Flows > 0 {
		cfg.NumFlows = s.Flows
	}
	if s.GroupSize > 0 {
		cfg.GroupSize = s.GroupSize
	}
	for _, p := range s.Peers {
		cfg.Peers = append(cfg.Peers, sim.PeerSpec{
			Name: p.Name, Weight: p.Weight, Prefixes: p.Prefixes, Offset: p.Offset,
		})
	}
	for _, e := range s.Events {
		cfg.Events = append(cfg.Events, sim.TimelineEvent{
			At: e.At, Kind: e.Kind, Peer: e.Peer, Peers: e.Peers,
			Hold: e.Hold, Fraction: e.Fraction, Detection: e.Detection,
			Graceful: e.Graceful, Rate: e.Rate,
		})
	}
	if s.Cost != nil {
		cfg.Cost = *s.Cost
	}
	cfg.Replicas = s.Replicas
	cfg.Takeover = s.Takeover
	cfg.Durable = s.Durable
	if mode == sim.Supercharged {
		// Standalone is the no-SDN baseline: it never gets the class mix,
		// so "standalone vs supercharged" compares zero deployment against
		// the spec's deployment.
		for _, r := range s.Routers {
			cfg.Routers = append(cfg.Routers, sim.RouterSpec{Name: r.Name, Supercharged: r.Supercharged})
		}
	}
	return cfg
}
