package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"supercharged/internal/feed"
)

// tableCache memoizes loaded dumps by resolved path: a prefix sweep (or
// a multi-mode run) replays the same multi-megabyte dump many times, and
// parsing it once per process is enough. Tables are read-only after
// load, so sharing one *feed.Table across concurrent runs is safe.
var tableCache sync.Map // resolved path -> *feed.Table

// LoadTable loads the MRT dump at path into a feed table (merged view),
// memoized per resolved path. Relative paths are tried against the
// working directory first, then each parent directory — the same upward
// search a git-aware tool does — so `testdata/ris-sample.mrt` resolves
// from the repo root, a package directory under `go test`, and CI alike.
func LoadTable(path string) (*feed.Table, error) {
	resolved, err := resolveTablePath(path)
	if err != nil {
		return nil, err
	}
	if t, ok := tableCache.Load(resolved); ok {
		return t.(*feed.Table), nil
	}
	f, err := os.Open(resolved)
	if err != nil {
		return nil, fmt.Errorf("scenario: open table: %w", err)
	}
	defer f.Close()
	dump, err := feed.FromMRT(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: table %s: %w", path, err)
	}
	actual, _ := tableCache.LoadOrStore(resolved, dump.Table)
	return actual.(*feed.Table), nil
}

// resolveTablePath finds the dump file: absolute paths as-is, relative
// paths against the working directory and then upward through parents.
func resolveTablePath(path string) (string, error) {
	if filepath.IsAbs(path) {
		if _, err := os.Stat(path); err != nil {
			return "", fmt.Errorf("scenario: table %s: %w", path, err)
		}
		return path, nil
	}
	dir, err := os.Getwd()
	if err != nil {
		return "", fmt.Errorf("scenario: table %s: %w", path, err)
	}
	for {
		cand := filepath.Join(dir, path)
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("scenario: table %s: not found in %s or any parent", path, mustGetwd())
		}
		dir = parent
	}
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}
