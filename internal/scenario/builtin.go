package scenario

import (
	"time"

	"supercharged/internal/sim"
)

// The built-in scenario catalogue. paper-fig5 reproduces the paper's one
// experiment; the rest are the failure patterns the paper's claim should
// — and sometimes does not — extend to.
func init() {
	MustRegister(Spec{
		Name: "paper-fig5",
		Description: "The paper's Fig. 5 experiment as a scenario: a single " +
			"BFD-detected primary-peer (R2) failure, swept across table sizes. " +
			"Supercharged convergence stays ~150 ms at every size while " +
			"standalone grows linearly with the prefix count.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
		PrefixSweep: []int{1_000, 10_000, 50_000, 100_000},
	})

	MustRegister(Spec{
		Name: "double-failure",
		Description: "Primary fails, then the backup fails too (k=3 groups over " +
			"three providers). The supercharger must retarget every group twice; " +
			"each rewrite is still one rule, so both convergences stay ~150 ms.",
		Peers:     []Peer{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}},
		GroupSize: 3,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
			{At: 8 * time.Second, Kind: sim.EventPeerDown, Peer: "R3"},
		},
	})

	MustRegister(Spec{
		Name: "flap-storm",
		Description: "A flapping primary link: two sub-detection blips (50 ms, " +
			"absorbed before BFD declares anything) around one real 3 s outage " +
			"with full failover and restoration churn. Absorbed flaps cost the " +
			"same in both modes; only the detected one separates them.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventLinkFlap, Peer: "R2", Hold: 50 * time.Millisecond},
			{At: 3 * time.Second, Kind: sim.EventLinkFlap, Peer: "R2", Hold: 3 * time.Second},
			{At: 12 * time.Second, Kind: sim.EventLinkFlap, Peer: "R2", Hold: 50 * time.Millisecond},
		},
	})

	MustRegister(Spec{
		Name: "backup-then-primary",
		Description: "The backup (R3) dies first — no traffic impact, nothing to " +
			"rewrite — then the primary (R2) dies and the engine must skip the " +
			"dead backup and retarget straight to the tertiary (R4).",
		Peers:     []Peer{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}},
		GroupSize: 3,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R3"},
			{At: 5 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	})

	MustRegister(Spec{
		Name: "partial-withdraw",
		Description: "The primary withdraws 30% of its table while the link " +
			"stays up, then re-announces it in one burst. No link failure means " +
			"no group rewrite: the affected prefixes converge entry-by-entry in " +
			"BOTH modes — the boundary of what supercharging accelerates.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPartialWithdraw, Peer: "R2", Fraction: 0.3},
			{At: 10 * time.Second, Kind: sim.EventBurstReannounce, Peer: "R2"},
		},
	})

	MustRegister(Spec{
		Name: "rule-loss",
		Description: "The switch loses its flow table (reboot/eviction) under a " +
			"healthy control plane. Supercharged traffic rides the VMAC rules, so " +
			"everything black-holes until the controller resyncs from its group " +
			"table; standalone has no switch rules in the path and never notices.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventRuleLoss},
		},
	})

	MustRegister(Spec{
		Name: "controller-restart",
		Description: "The primary fails while the controller is restarting. The " +
			"switch keeps forwarding on installed rules, but the failover rewrite " +
			"waits for the controller to return — the supercharger's single point " +
			"of failure, and the one case where standalone converges first.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventControllerRestart, Hold: 3 * time.Second},
			{At: 1500 * time.Millisecond, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	})

	MustRegister(Spec{
		Name: "holdtimer-failover",
		Description: "The same single primary failure as paper-fig5 but noticed " +
			"by the BGP hold timer instead of BFD: detection (90 s) dwarfs both " +
			"convergence pipelines, showing why the paper pairs the supercharger " +
			"with fast detection.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2", Detection: sim.DetectHoldTimer},
		},
	})
}
