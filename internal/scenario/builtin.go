package scenario

import (
	"fmt"
	"time"

	"supercharged/internal/sim"
)

// The built-in scenario catalogue. paper-fig5 reproduces the paper's one
// experiment; the rest are the failure patterns the paper's claim should
// — and sometimes does not — extend to. Every builtin carries its paper
// mapping (Paper) and expected qualitative outcome (Expect):
// docs/scenarios.md is generated from these fields (`cmd/scenario docs`)
// and CI fails when the two drift apart.
func init() {
	// --- first generation: single-failure timelines over the Fig. 4 shape ---

	MustRegister(Spec{
		Name: "paper-fig5",
		Description: "The paper's Fig. 5 experiment as a scenario: a single " +
			"BFD-detected primary-peer (R2) failure, swept across table sizes.",
		Paper: "§4, Fig. 5 (and the E1/E2 experiments around it) — the headline " +
			"comparison of supercharged vs standalone convergence against table size.",
		Expect: "The headline claim. Supercharged convergence is flat (~130 ms: " +
			"90 ms BFD + 15 ms controller + 25 ms rule install) at every size; " +
			"standalone grows linearly with the prefix count — ~28 s at 100 k " +
			"entries — because each affected prefix waits for its position in the " +
			"FIB walk.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
		PrefixSweep: []int{1_000, 10_000, 50_000, 100_000},
	})

	xlSizes, ok := TierSizes("xl")
	if !ok {
		panic("scenario: size tier \"xl\" missing from the tier registry")
	}
	MustRegister(Spec{
		Name: "paper-fig5-xl",
		Description: "The Fig. 5 failover at full-Internet scale: the same single " +
			"BFD-detected primary failure at the xl size tier (100k and 1M " +
			"prefixes), seed-capped to keep CI within budget.",
		Paper: "§4, Fig. 5 extrapolated past the paper's 500k ceiling to ~1M " +
			"prefixes — today's full-table scale, the ROADMAP's north star. The " +
			"paper's linear fit predicts ~4.7 min of standalone blackout at 1M " +
			"entries (280 µs × 10⁶ after detection).",
		Expect: "Constant-time failover is only interesting if it holds where " +
			"the linear term hurts: supercharged convergence stays ~130 ms at " +
			"1M prefixes — the same number as at 1k — while standalone needs " +
			"minutes, a speedup over three orders of magnitude. One seed " +
			"(MaxSeeds 1): a 1M-prefix lab is deterministic per seed and the " +
			"sweep spends its repetitions on the cheap sizes.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
		PrefixSweep: xlSizes,
		MaxSeeds:    1,
	})

	MustRegister(Spec{
		Name: "paper-fig5-real",
		Description: "The Fig. 5 failover replayed over a real routing table: " +
			"the committed RIS-style MRT sample (testdata/ris-sample.mrt) " +
			"instead of the synthetic feed, swept s through l.",
		Paper: "§4's experimental setup — the paper drives its testbed with a " +
			"RIB \"from one of our production routers\", not a generated one. " +
			"This scenario closes that gap: same failure, same sweep, but the " +
			"announced prefixes, AS paths and attribute-sharing skew come from " +
			"an MRT TABLE_DUMP_V2 dump (internal/mrt → feed.FromMRT).",
		Expect: "The headline claim must not depend on the synthetic feed's " +
			"attribute statistics: supercharged convergence stays flat " +
			"(~130 ms) and standalone linear over the real table too. Real " +
			"dumps share attribute sets far more unevenly than the generator " +
			"— this is the scenario that would expose a template-shape " +
			"dependence in the grouping pipeline. MaxSeeds 1: the table is " +
			"fixed, so seeds only move probe-flow choices.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
		PrefixSweep: []int{1_000, 5_000, 10_000, 50_000},
		MaxSeeds:    1,
		Table:       "testdata/ris-sample.mrt",
	})

	MustRegister(Spec{
		Name: "double-failure",
		Description: "Primary fails, then the backup fails too (k=3 groups over " +
			"three providers).",
		Paper: "§3's backup-group construction (Listing 1 computes ordered " +
			"tuples, not just pairs); the ablation the paper sketches for k>2.",
		Expect: "The supercharger retargets every group twice, but each retarget " +
			"is still one rule rewrite, so both convergences stay ~150 ms. " +
			"Standalone pays the full FIB walk twice.",
		Peers:     []Peer{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}},
		GroupSize: 3,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
			{At: 8 * time.Second, Kind: sim.EventPeerDown, Peer: "R3"},
		},
	})

	MustRegister(Spec{
		Name: "flap-storm",
		Description: "A flapping primary link: two sub-detection blips (50 ms, " +
			"absorbed before BFD declares anything) around one real 3 s outage " +
			"with full failover and restoration churn.",
		Paper: "§2's motivation that detection and convergence are separate " +
			"terms; stresses the detection boundary the paper's 150 ms number " +
			"sits on.",
		Expect: "The absorbed blips blackhole traffic for exactly their hold " +
			"time in both modes — no detection, no reaction, nothing the " +
			"supercharger can accelerate. Only the detected middle outage " +
			"separates the modes (~15× here).",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventLinkFlap, Peer: "R2", Hold: 50 * time.Millisecond},
			{At: 3 * time.Second, Kind: sim.EventLinkFlap, Peer: "R2", Hold: 3 * time.Second},
			{At: 12 * time.Second, Kind: sim.EventLinkFlap, Peer: "R2", Hold: 50 * time.Millisecond},
		},
	})

	MustRegister(Spec{
		Name: "backup-then-primary",
		Description: "The backup (R3) dies first — no traffic impact, nothing to " +
			"rewrite — then the primary (R2) dies and the engine must skip the " +
			"dead backup and retarget straight to the tertiary (R4).",
		Paper: "The liveness bookkeeping inside Listing 2 (the engine consults " +
			"peer state when it picks a group's next target).",
		Expect: "The first event affects nothing; the second converges in one " +
			"rewrite per group — constant time — with traffic landing on R4. " +
			"Standalone re-walks the FIB on the second failure.",
		Peers:     []Peer{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}},
		GroupSize: 3,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R3"},
			{At: 5 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	})

	MustRegister(Spec{
		Name: "partial-withdraw",
		Description: "The primary withdraws 30% of its table while the link " +
			"stays up, then re-announces it in one burst 9 s later.",
		Paper: "§5's limits discussion. The supercharger accelerates " +
			"link-failure convergence; per-prefix routing changes are outside " +
			"the backup-group abstraction.",
		Expect: "The boundary case. No link failure means no group rewrite: the " +
			"withdrawn prefixes converge entry-by-entry in both modes (speedup " +
			"≈ 1). A reproduction that showed a supercharged win here would be " +
			"a bug.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPartialWithdraw, Peer: "R2", Fraction: 0.3},
			{At: 10 * time.Second, Kind: sim.EventBurstReannounce, Peer: "R2"},
		},
	})

	MustRegister(Spec{
		Name: "rule-loss",
		Description: "The switch loses its entire flow table (reboot, table " +
			"eviction) under a healthy control plane; the controller resyncs " +
			"every group rule from its own state.",
		Paper: "The fate-sharing/failure-model discussion of putting an SDN " +
			"switch in the forwarding path (§5).",
		Expect: "The cost of the new dependency. Supercharged traffic rides the " +
			"VMAC rules, so everything blackholes until the resync (~55 ms, one " +
			"rule per group). Standalone has no switch rules in its path and " +
			"never notices — the one scenario where only the supercharged mode " +
			"is affected, so the comparison table shows no speedup ratio.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventRuleLoss},
		},
	})

	MustRegister(Spec{
		Name: "controller-restart",
		Description: "The primary fails 500 ms into a 3 s controller restart. " +
			"Installed switch rules keep forwarding (fail-standalone), but the " +
			"failover rewrite waits for the controller to come back.",
		Paper: "§5's single-point-of-failure discussion and the deterministic-" +
			"allocation/replica story (examples/failover exercises the recovery " +
			"half).",
		Expect: "The supercharger's worst case. The rewrite is deferred ~2.5 s " +
			"while the standalone router converges on its own schedule — the one " +
			"comparison where standalone wins (speedup < 1 at small table " +
			"sizes). At full-table sizes the standalone walk would still be " +
			"slower; the crossover is the point of the scenario.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventControllerRestart, Hold: 3 * time.Second},
			{At: 1500 * time.Millisecond, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	})

	MustRegister(Spec{
		Name: "holdtimer-failover",
		Description: "The same single primary failure as paper-fig5, but " +
			"noticed by the BGP hold timer (90 s) instead of BFD (90 ms).",
		Paper: "§2/§4 — the paper pairs the supercharger with fast detection " +
			"and this scenario shows why.",
		Expect: "Detection dwarfs both convergence pipelines: both modes " +
			"blackhole for ~90 s and the speedup collapses to ≈1. Fast " +
			"convergence without fast detection buys nothing.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2", Detection: sim.DetectHoldTimer},
		},
	})

	// --- second generation: fabrics, correlated failures, resets, noise ---

	// Twelve providers with staggered 2000-prefix windows over a 6000-entry
	// table: every prefix is covered by four peers, and which four rotates
	// along the table, so the group table holds many distinct
	// (primary, backup) pairs instead of paper-fig5's single one.
	fabric := make([]Peer, 12)
	for i := range fabric {
		fabric[i] = Peer{Name: fabricName(i), Prefixes: 2000, Offset: 500 * i}
	}
	MustRegister(Spec{
		Name: "route-server-fabric",
		Description: "A many-peer fabric: 12 providers with staggered partial " +
			"feeds (2000-prefix windows rotated around a 6000-entry table), " +
			"per-position preferences, and a failure of the most-preferred " +
			"peer (R2).",
		Paper: "§3's group-table scaling analysis: with n peers the number of " +
			"(primary, backup) groups is bounded by n(n-1), and E4 / " +
			"`cmd/lab -experiment groups` measures that combinatorial growth. " +
			"This scenario realizes a realistic slice of it — 12 distinct " +
			"groups instead of paper-fig5's one — and checks convergence " +
			"stays constant anyway.",
		Expect: "The group table grows 12× (watch the Groups column), yet the " +
			"failover still rewrites only the groups whose primary died — " +
			"two rules here — so supercharged convergence stays ~130 ms " +
			"while standalone walks every affected entry. Only ~1/3 of flows " +
			"are affected (R2 carries only its window); the rest never " +
			"notice.",
		Peers:    fabric,
		Prefixes: 6_000,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	})

	MustRegister(Spec{
		Name: "srlg-dual-failure",
		Description: "A shared-risk link group: the primary (R2) and first " +
			"backup (R3) ride the same conduit and one cut takes both down in " +
			"a single event. Four providers, k=3 groups.",
		Paper: "§3's argument for ordered k-tuples rather than (primary, " +
			"backup) pairs: a correlated failure consumes two members at once, " +
			"and only a group that already knows the tertiary can converge " +
			"with one rewrite.",
		Expect: "One detection, one reaction: the engine skips both dead " +
			"members and retargets every group straight to R4 — still one " +
			"rewrite per group, still ~130 ms. Standalone pays one combined " +
			"FIB walk. With k=2 the same event would strand traffic (see the " +
			"srlg test suite): correlated failures are why k matters.",
		Peers:     []Peer{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}, {Name: "R5"}},
		GroupSize: 3,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventSRLGDown, Peers: []string{"R2", "R3"}},
		},
	})

	MustRegister(Spec{
		Name: "maintenance-rolling",
		Description: "Rolling maintenance: three providers are taken down for " +
			"2 s windows one after another (R4, then R3, then R2), never two " +
			"at once. k=3 groups.",
		Paper: "The operational case §1 motivates: planned maintenance is the " +
			"common source of peer-down churn, and staggered windows are how " +
			"operators avoid correlated loss.",
		Expect: "Only the primary's window (R2, the last) affects traffic — " +
			"one constant-time failover and a restoration when it returns; " +
			"staggering is what keeps the group non-empty throughout. The " +
			"backup windows are zero-impact on traffic, but not free for the " +
			"standalone router: each one churns its whole FIB (remove on the " +
			"flap, rewrite on the replay), and that backlog queues ahead of " +
			"the real failover — its recovery ends up riding the 2 s restore " +
			"window rather than its own walk. The supercharger rewrites a " +
			"handful of rules and ignores the rest.",
		Peers:     []Peer{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}},
		GroupSize: 3,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventLinkFlap, Peer: "R4", Hold: 2 * time.Second},
			{At: 4 * time.Second, Kind: sim.EventLinkFlap, Peer: "R3", Hold: 2 * time.Second},
			{At: 7 * time.Second, Kind: sim.EventLinkFlap, Peer: "R2", Hold: 2 * time.Second},
		},
	})

	MustRegister(Spec{
		Name: "session-reset-hard",
		Description: "The primary's BGP session resets without graceful " +
			"restart: its forwarding state is flushed for the 1 s restart " +
			"window and the re-established session replays the full table.",
		Paper: "§2's decomposition of convergence into detection + reaction: " +
			"a reset is announced (TCP reset / NOTIFICATION), not detected, so " +
			"this isolates the reaction term the supercharger accelerates. " +
			"The full-feed replay afterwards is the re-convergence churn " +
			"RFC 4724 §1 exists to avoid.",
		Expect: "No detection latency in either mode (detect column is empty). " +
			"Supercharged converges in ~40 ms — controller reaction plus one " +
			"rule install, its best case anywhere. Standalone starts its FIB " +
			"walk immediately but is capped by the 1 s session restore; the " +
			"replay then churns its FIB a second time (watch FIB writes).",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventSessionReset, Peer: "R2"},
		},
	})

	MustRegister(Spec{
		Name: "session-reset-graceful",
		Description: "The same primary session reset with RFC 4724 graceful " +
			"restart: forwarding state survives the restart and the replay " +
			"refreshes routes that never stopped working.",
		Paper: "RFC 4724 as the standard answer to session-reset churn, and " +
			"§5's observation that the supercharger must coexist with it: the " +
			"controller's semantic churn filter is what keeps the replayed " +
			"(byte-identical) table from re-walking the router's FIB.",
		Expect: "Zero blackout in both modes — no comparison rows at all, " +
			"which is the result. The control-plane cost table tells the real " +
			"story: standalone rewrites its whole FIB digesting the replay " +
			"(thousands of writes for nothing), while the supercharged " +
			"controller suppresses every redundant announcement and the " +
			"router's FIB write count stays at zero.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventSessionReset, Peer: "R2", Graceful: true},
		},
	})

	// --- third generation: centralization economics — partial deployment,
	// controller cost, replica failover (the Sermpezis & Dimitropoulos
	// questions: when does centralized convergence actually win?) ---

	// Six edge routers behind the same two providers; only the first k
	// are supercharged in the partial-deployment builtins.
	deployment := func(k int) []Router {
		routers := make([]Router, 6)
		for i := range routers {
			routers[i] = Router{Supercharged: i < k}
		}
		return routers
	}
	MustRegister(Spec{
		Name: "partial-deployment-k2",
		Description: "Partial SDN deployment: six edge routers share the two " +
			"providers but only two are supercharged; the primary (R2) fails " +
			"once. Probed flows are dealt across all six routers.",
		Paper: "§5's deployment discussion read against Sermpezis & " +
			"Dimitropoulos (\"Can SDN Accelerate BGP Convergence?\"): " +
			"centralized convergence only helps the routers that are behind " +
			"the controller, and real deployments are incremental.",
		Expect: "The crossover surface's deployment axis. The supercharged " +
			"class converges flat (~130 ms, see the supercharged-class " +
			"column) while the vanilla class walks its FIB linearly — so the " +
			"aggregate speedup collapses toward 1, because the slowest flow " +
			"always rides a vanilla router. Partial deployment buys exactly " +
			"the deployed fraction, nothing more.",
		Peers:   []Peer{{Name: "R2"}, {Name: "R3"}},
		Routers: deployment(2),
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
		PrefixSweep: []int{5_000, 50_000},
	})

	MustRegister(Spec{
		Name: "partial-deployment-k6",
		Description: "The same six-router deployment with every router " +
			"supercharged — full deployment expressed through the partial-" +
			"deployment machinery.",
		Paper: "The k=N end of the deployment axis; the paper's own setup " +
			"(every edge router supercharged) recovered as a special case.",
		Expect: "Equivalence check. With no vanilla routers left there is no " +
			"per-class breakdown and every flow converges flat (~130 ms), " +
			"matching paper-fig5 at the same size: the deployment refactor " +
			"must not change what full deployment measures.",
		Peers:    []Peer{{Name: "R2"}, {Name: "R3"}},
		Routers:  deployment(6),
		Prefixes: 10_000,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	})

	cost := sim.DefaultControllerCost()
	MustRegister(Spec{
		Name: "costed-controller",
		Description: "The paper-fig5 failover with a controller that is no " +
			"longer free: the calibrated cost model (125 ms base reaction, " +
			"per-update and per-rule taxes seeded from the committed " +
			"churn-filter micro-benchmark) prices every centralized step.",
		Paper: "E3's ~125 ms p99 reaction latency under load (§4), applied " +
			"as a standing tax the way \"Analysing the Effects of Routing " +
			"Centralization on BGP Convergence Time\" models controller " +
			"processing delay.",
		Expect: "The crossover surface's cost axis. At 1k prefixes the base " +
			"tax eats most of the margin (speedup drops from ~7× to ~2×); " +
			"at 50k the standalone FIB walk dwarfs the tax and supercharging " +
			"still wins ≥10×. Centralization pays off exactly where the " +
			"linear term hurts.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Cost:  &cost,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
		PrefixSweep: []int{1_000, 50_000},
	})

	MustRegister(Spec{
		Name: "replica-failover-hard",
		Description: "The controller primary is killed 100 ms before the " +
			"primary peer fails; the standby needs a slow 3 s takeover and " +
			"the dead primary's in-flight FLOW_MODs are lost (non-durable), " +
			"so the standby resyncs the switch after taking over.",
		Paper: "§5's single-point-of-failure discussion and examples/" +
			"failover's deterministic-VNH replica story, stress-tested: the " +
			"takeover window is when centralized convergence is worse than " +
			"no centralization at all.",
		Expect: "The crossover surface's failure axis — the builtin where " +
			"supercharging loses outright (speedup < 1). The failover " +
			"rewrite waits out the takeover (~3 s) while the standalone " +
			"router converges on its own schedule in under a second at this " +
			"size.",
		Peers:    []Peer{{Name: "R2"}, {Name: "R3"}},
		Replicas: 2,
		Takeover: 3 * time.Second,
		Prefixes: 1_000,
		Events: []Event{
			{At: 900 * time.Millisecond, Kind: sim.EventControllerFailover},
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	})

	MustRegister(Spec{
		Name: "replica-failover-warm",
		Description: "A warm standby: three replicas, 150 ms takeover, " +
			"durable rule log. The primary peer fails and the controller " +
			"primary is killed 100 ms later — mid-reaction, with the " +
			"failover FLOW_MODs still in flight; the standby replays them.",
		Paper: "The replica design §5 sketches (deterministic VNH allocation " +
			"means the standby shares the primary's group table byte for " +
			"byte; examples/failover demonstrates the allocation half).",
		Expect: "Centralization done right survives its own failure: the " +
			"replayed FLOW_MODs land right after the 150 ms takeover, so " +
			"supercharged convergence degrades from ~130 ms to ~300 ms — " +
			"still far ahead of the standalone walk, ≥10× at 50k prefixes.",
		Peers:    []Peer{{Name: "R2"}, {Name: "R3"}},
		Replicas: 3,
		Takeover: 150 * time.Millisecond,
		Durable:  true,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
			{At: 1100 * time.Millisecond, Kind: sim.EventControllerFailover},
		},
		PrefixSweep: []int{5_000, 50_000},
	})

	MustRegister(Spec{
		Name: "noisy-failover",
		Description: "Background UPDATE noise during failover: a tertiary peer " +
			"(R4) re-announces its feed at 5000 updates/s for 4 s, and the " +
			"primary (R2) fails in the middle of it.",
		Paper: "The E3 micro-benchmark (§4): reaction latency under " +
			"control-plane load. The paper injects update bursts at the " +
			"controller and shows failover latency stays flat; here the same " +
			"churn also hits the standalone router for comparison.",
		Expect: "The noise changes no routes, but the naive standalone router " +
			"turns every update into a FIB write, so the failover walk queues " +
			"behind the backlog and converges measurably slower than " +
			"paper-fig5 at the same size. The supercharged controller's churn " +
			"filter drops the noise before the router sees it: failover stays " +
			"~130 ms, and the noise event itself affects zero flows in both " +
			"modes.",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}},
		Events: []Event{
			{At: 500 * time.Millisecond, Kind: sim.EventUpdateNoise, Peer: "R4", Hold: 4 * time.Second, Rate: 5_000},
			{At: 2 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	})
}

// fabricName names the route-server-fabric peers R2..R13 by position.
func fabricName(i int) string { return fmt.Sprintf("R%d", i+2) }
