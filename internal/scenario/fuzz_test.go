package scenario

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"supercharged/internal/sim"
)

// fastFuzz keeps fuzz tests cheap: small tables, few flows.
func fastFuzz() FuzzOptions {
	return FuzzOptions{Seed: 1, Runs: 5, Prefixes: 600, Flows: 20}
}

func TestGenerateSpecDeterministic(t *testing.T) {
	opts := fastFuzz()
	for i := 0; i < 10; i++ {
		a := GenerateSpec(7, i, opts)
		b := GenerateSpec(7, i, opts)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("spec %d differs across generations:\n%+v\n%+v", i, a, b)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("generated spec %d invalid: %v", i, err)
		}
	}
	if reflect.DeepEqual(GenerateSpec(7, 0, opts), GenerateSpec(8, 0, opts)) {
		t.Fatal("different seeds generated identical specs")
	}
	if reflect.DeepEqual(GenerateSpec(7, 0, opts), GenerateSpec(7, 1, opts)) {
		t.Fatal("different indices generated identical specs")
	}
}

func TestFuzzSessionReproducesByteForByte(t *testing.T) {
	// The whole session transcript — generated timelines and verdicts — is
	// the reproduction contract of `scenario fuzz -seed N`.
	run := func() (string, *FuzzResult) {
		var buf bytes.Buffer
		res, err := Fuzz(context.Background(), fastFuzz(), &buf)
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), res
	}
	logA, resA := run()
	logB, resB := run()
	if logA != logB {
		t.Fatalf("fuzz session logs differ:\n%s\nvs\n%s", logA, logB)
	}
	if !reflect.DeepEqual(resA, resB) {
		t.Fatal("fuzz session results differ")
	}
	if strings.Count(logA, "\n") < resA.Runs {
		t.Fatalf("expected one log line per run, got:\n%s", logA)
	}
}

func TestCheckSpecPassesOnHealthySpec(t *testing.T) {
	spec := Spec{
		Name:  "fuzz-test-healthy",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	}
	reason, err := CheckSpec(context.Background(), spec, fastFuzz())
	if err != nil {
		t.Fatal(err)
	}
	if reason != "" {
		t.Fatalf("healthy single-failure spec flagged: %s", reason)
	}
}

func TestExhaustibleCarveOut(t *testing.T) {
	base := Spec{
		Name:  "fuzz-test-exh",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}},
	}
	cases := []struct {
		name   string
		k      int
		events []Event
		want   bool
	}{
		{"one down k2", 0, []Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"}}, false},
		{"two down k2", 0, []Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
			{At: 2 * time.Second, Kind: sim.EventLinkFlap, Peer: "R3", Hold: time.Second}}, true},
		{"two down k3", 3, []Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
			{At: 2 * time.Second, Kind: sim.EventPeerDown, Peer: "R3"}}, false},
		{"srlg pair k3", 3, []Event{
			{At: time.Second, Kind: sim.EventSRLGDown, Peers: []string{"R2", "R3"}},
			{At: 2 * time.Second, Kind: sim.EventPeerDown, Peer: "R4"}}, true},
		{"graceful resets never down", 0, []Event{
			{At: time.Second, Kind: sim.EventSessionReset, Peer: "R2", Graceful: true},
			{At: 2 * time.Second, Kind: sim.EventSessionReset, Peer: "R3", Graceful: true}}, false},
		{"hard resets count", 0, []Event{
			{At: time.Second, Kind: sim.EventSessionReset, Peer: "R2"},
			{At: 2 * time.Second, Kind: sim.EventSessionReset, Peer: "R3"}}, true},
		// The overlap analysis un-skips what the old distinct-peer count
		// could not: two downs whose intervals never coexist. R2 is
		// restored at 2 s and safely usable again by 2 s + sessionUp +
		// overlapSlack = 5 s; R3 only fails at 7.5 s.
		{"separated downs don't overlap", 0, []Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
			{At: 2 * time.Second, Kind: sim.EventPeerUp, Peer: "R2"},
			{At: 7500 * time.Millisecond, Kind: sim.EventPeerDown, Peer: "R3"}}, false},
		// ...but a restore inside the widened window still counts as
		// overlapping: R2's interval runs to 6 s, covering R3's failure.
		{"downs within slack overlap", 0, []Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
			{At: 3 * time.Second, Kind: sim.EventPeerUp, Peer: "R2"},
			{At: 4 * time.Second, Kind: sim.EventPeerDown, Peer: "R3"}}, true},
		// Hard resets are bounded intervals too: far enough apart they
		// stop counting (R2's window [1 s, 1+1+2 = 4 s] misses R3's 7 s).
		{"separated hard resets don't overlap", 0, []Event{
			{At: time.Second, Kind: sim.EventSessionReset, Peer: "R2"},
			{At: 7 * time.Second, Kind: sim.EventSessionReset, Peer: "R3"}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := base
			s.GroupSize = tc.k
			s.Events = tc.events
			if got := exhaustible(s); got != tc.want {
				t.Fatalf("exhaustible = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestOverlapOracleChecksSeparatedDowns is the regression the
// interval-overlap upgrade buys: a timeline that downs two distinct
// peers at well-separated times was k-exhaustible under the old
// distinct-peer count — and therefore never checked. The overlap oracle
// must now actually run it in both modes, and the supercharger (which
// handles each failure with a full backup-group available) must pass.
func TestOverlapOracleChecksSeparatedDowns(t *testing.T) {
	spec := Spec{
		Name:  "fuzz-test-separated",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
			{At: 2 * time.Second, Kind: sim.EventPeerUp, Peer: "R2"},
			{At: 8 * time.Second, Kind: sim.EventPeerDown, Peer: "R3"},
		},
	}
	if exhaustible(spec) {
		t.Fatal("separated failures marked exhaustible: the overlap analysis regressed to counting")
	}
	if sr := skipReason(spec); sr != "" {
		t.Fatalf("separated failures skipped (%s); the oracle must check them", sr)
	}
	reason, err := CheckSpec(context.Background(), spec, fastFuzz())
	if err != nil {
		t.Fatal(err)
	}
	if reason != "" {
		t.Fatalf("supercharger flagged on separated sequential failures: %s", reason)
	}
}

func TestSkipReasonReplicaExhaustion(t *testing.T) {
	spec := Spec{
		Name:  "fuzz-test-replicas",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: time.Second, Kind: sim.EventControllerFailover},
			{At: 2 * time.Second, Kind: sim.EventControllerFailover},
			{At: 3 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
		Replicas: 2,
	}
	if sr := skipReason(spec); sr != "replica-exhausted" {
		t.Fatalf("two failovers at two replicas: skipReason = %q, want replica-exhausted", sr)
	}
	spec.Replicas = 3
	if sr := skipReason(spec); sr != "" {
		t.Fatalf("two failovers at three replicas skipped (%s); a standby survives", sr)
	}
}

func TestFuzzAxes(t *testing.T) {
	if err := ValidateAxes([]string{AxisCost, AxisReplicas}); err != nil {
		t.Fatal(err)
	}
	if err := ValidateAxes([]string{"bogus-axis"}); err == nil {
		t.Fatal("unknown axis accepted")
	}
	// An empty (non-nil) axis list is the bare event grammar: none of the
	// optional dimensions may appear, across many indices.
	bare := fastFuzz()
	bare.Axes = []string{}
	for i := 0; i < 40; i++ {
		s := GenerateSpec(11, i, bare)
		if s.GroupSize != 0 || len(s.Routers) > 0 || s.Cost != nil || s.Replicas != 0 {
			t.Fatalf("spec %d drew a disabled axis: %+v", i, s)
		}
		for _, p := range s.Peers {
			if p.Prefixes != 0 || p.Offset != 0 {
				t.Fatalf("spec %d drew a feed window with windows axis off", i)
			}
		}
		for _, ev := range s.Events {
			if ev.Detection != "" {
				t.Fatalf("spec %d drew hold-timer detection with detection axis off", i)
			}
			if ev.Kind == sim.EventControllerFailover {
				t.Fatalf("spec %d drew a failover with replicas axis off", i)
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("bare spec %d invalid: %v", i, err)
		}
	}
	// With all axes on (nil), the new dimensions must each actually occur
	// somewhere — the grammar really covers them.
	all := fastFuzz()
	var sawDeploy, sawCost, sawReplicas bool
	for i := 0; i < 60; i++ {
		s := GenerateSpec(11, i, all)
		if err := s.Validate(); err != nil {
			t.Fatalf("spec %d invalid: %v", i, err)
		}
		if len(s.Routers) > 0 {
			sawDeploy = true
			sc := 0
			for _, r := range s.Routers {
				if r.Supercharged {
					sc++
				}
			}
			if sc == 0 {
				t.Fatalf("spec %d drew an all-vanilla deployment", i)
			}
		}
		if s.Cost != nil {
			sawCost = true
		}
		if s.Replicas > 0 {
			sawReplicas = true
			failovers := 0
			for _, ev := range s.Events {
				if ev.Kind == sim.EventControllerFailover {
					failovers++
				}
			}
			if failovers == 0 || failovers >= s.Replicas {
				t.Fatalf("spec %d drew %d failovers at %d replicas", i, failovers, s.Replicas)
			}
		}
	}
	if !sawDeploy || !sawCost || !sawReplicas {
		t.Fatalf("60 all-axes specs never drew deployment=%v cost=%v replicas=%v",
			sawDeploy, sawCost, sawReplicas)
	}
}

// TestShrinkerProducesOneMinimalSpec pins the shrinker against a
// synthetic oracle: a spec "fails" iff its timeline still contains BOTH
// a peer-down of R2 and a link-flap of R3. The shrunk result must be
// exactly those two events — and removing either one must pass.
func TestShrinkerProducesOneMinimalSpec(t *testing.T) {
	oracle := func(_ context.Context, s Spec, _ FuzzOptions) (string, error) {
		var down, flap bool
		for _, ev := range s.Events {
			if ev.Kind == sim.EventPeerDown && ev.Peer == "R2" {
				down = true
			}
			if ev.Kind == sim.EventLinkFlap && ev.Peer == "R3" {
				flap = true
			}
		}
		if down && flap {
			return "synthetic failure", nil
		}
		return "", nil
	}
	cost := sim.DefaultControllerCost()
	spec := Spec{
		Name: "fuzz-test-shrink",
		Peers: []Peer{
			{Name: "R2"}, {Name: "R3"}, {Name: "R4", Prefixes: 300, Offset: 100}, {Name: "R5"},
		},
		GroupSize: 3,
		Events: []Event{
			{At: 1 * time.Second, Kind: sim.EventBurstReannounce, Peer: "R4"},
			{At: 2 * time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
			{At: 3 * time.Second, Kind: sim.EventPartialWithdraw, Peer: "R5", Fraction: 0.5},
			{At: 4 * time.Second, Kind: sim.EventLinkFlap, Peer: "R3", Hold: time.Second},
			{At: 5 * time.Second, Kind: sim.EventUpdateNoise, Peer: "R4", Hold: time.Second, Rate: 500},
			{At: 6 * time.Second, Kind: sim.EventControllerFailover},
		},
		Routers:  []Router{{Supercharged: true}, {Supercharged: false}},
		Cost:     &cost,
		Replicas: 2,
		Takeover: 250 * time.Millisecond,
		Durable:  true,
	}
	shrunk, reason, err := shrinkSpec(context.Background(), spec, fastFuzz(), oracle)
	if err != nil {
		t.Fatal(err)
	}
	if reason != "synthetic failure" {
		t.Fatalf("reason %q", reason)
	}
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk spec invalid: %v", err)
	}
	if len(shrunk.Events) != 2 {
		t.Fatalf("shrunk to %d events, want 2: %s", len(shrunk.Events), TimelineString(shrunk))
	}
	// The irrelevant peers, group size and feed shaping must be gone too.
	if len(shrunk.Peers) != 2 {
		t.Fatalf("shrunk to %d peers, want 2 (R2, R3)", len(shrunk.Peers))
	}
	if shrunk.GroupSize != 0 {
		t.Fatalf("group size %d survived shrinking", shrunk.GroupSize)
	}
	for _, p := range shrunk.Peers {
		if p.Prefixes != 0 || p.Offset != 0 {
			t.Fatalf("feed shaping survived shrinking: %+v", p)
		}
	}
	// The centralization-economics dimensions are irrelevant to the
	// synthetic failure and must be simplified away too.
	if shrunk.Cost != nil {
		t.Fatal("controller cost survived shrinking")
	}
	if len(shrunk.Routers) != 0 {
		t.Fatalf("deployment %v survived shrinking", shrunk.Routers)
	}
	if shrunk.Replicas != 0 || shrunk.Takeover != 0 || shrunk.Durable {
		t.Fatalf("replica model survived shrinking: rep=%d takeover=%v durable=%v",
			shrunk.Replicas, shrunk.Takeover, shrunk.Durable)
	}
	// 1-minimality: removing either remaining event passes the oracle.
	for i := range shrunk.Events {
		cand := shrunk
		cand.Events = append(append([]Event(nil), shrunk.Events[:i]...), shrunk.Events[i+1:]...)
		if r, _ := oracle(context.Background(), cand, FuzzOptions{}); r != "" {
			t.Fatalf("dropping event %d still fails: not 1-minimal", i)
		}
	}
}

// TestShrinkerOnRealOracle reintroduces the update-noise bug the fuzzer
// found during development (a noise burst re-announcing withdrawn
// prefixes) via a synthetic oracle stand-in, and checks ShrinkSpec on
// the real oracle leaves a passing spec untouched.
func TestShrinkSpecPassingSpecUnchanged(t *testing.T) {
	spec := Spec{
		Name:  "fuzz-test-pass",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	}
	shrunk, reason, err := ShrinkSpec(context.Background(), spec, fastFuzz())
	if err != nil {
		t.Fatal(err)
	}
	if reason != "" {
		t.Fatalf("passing spec reported reason %q", reason)
	}
	if !reflect.DeepEqual(shrunk, spec) {
		t.Fatal("passing spec was mutated by the shrinker")
	}
}

func TestTimelineStringStable(t *testing.T) {
	spec := Spec{
		Name:  "fuzz-test-ts",
		Peers: []Peer{{Name: "R2"}, {Name: "R3"}, {Name: "R4"}},
		Events: []Event{
			{At: 1500 * time.Millisecond, Kind: sim.EventSRLGDown, Peers: []string{"R2", "R3"}},
			{At: 2 * time.Second, Kind: sim.EventSessionReset, Peer: "R2", Hold: time.Second, Graceful: true},
			{At: 3 * time.Second, Kind: sim.EventUpdateNoise, Peer: "R4", Hold: time.Second, Rate: 1000},
			{At: 4 * time.Second, Kind: sim.EventPeerDown, Peer: "R4", Detection: sim.DetectHoldTimer},
		},
	}
	want := "3p k=2: srlg-down(R2+R3 @1.5s) session-reset(R2 @2s hold=1s graceful)" +
		" update-noise(R4 @3s hold=1s rate=1000) peer-down(R4 @4s hold-timer)"
	if got := TimelineString(spec); got != want {
		t.Fatalf("timeline string\n got: %s\nwant: %s", got, want)
	}

	// The centralization-economics markers: deployment mix, priced
	// controller, replica count and durability flag in the header.
	cost := sim.DefaultControllerCost()
	spec = Spec{
		Name: "fuzz-test-ts-econ",
		Peers: []Peer{
			{Name: "R2"}, {Name: "R3"},
		},
		Routers:  []Router{{Supercharged: true}, {}, {Supercharged: true}},
		Cost:     &cost,
		Replicas: 2,
		Takeover: 300 * time.Millisecond,
		Durable:  true,
		Events: []Event{
			{At: 900 * time.Millisecond, Kind: sim.EventControllerFailover},
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	}
	want = "2p k=2 d=2/3 cost rep=2 durable: controller-failover(@900ms)" +
		" peer-down(R2 @1s)"
	if got := TimelineString(spec); got != want {
		t.Fatalf("timeline string\n got: %s\nwant: %s", got, want)
	}
}
