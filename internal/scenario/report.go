package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"supercharged/internal/metrics"
	"supercharged/internal/sim"
)

// ConvergenceSummary condenses one event's per-flow blackout gaps, in
// milliseconds.
type ConvergenceSummary struct {
	Samples int     `json:"samples"`
	MinMS   float64 `json:"min_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// EventReport is one timeline event's measured impact.
type EventReport struct {
	Index    int     `json:"index"`
	Kind     Kind    `json:"kind"`
	Peer     string  `json:"peer,omitempty"`
	AtMS     float64 `json:"at_ms"`
	DetectMS float64 `json:"detect_ms"`
	// Affected flows blacked out because of this event; Recovered came
	// back, Unrecovered never did (e.g. no surviving path covers them).
	Affected    int                 `json:"affected"`
	Recovered   int                 `json:"recovered"`
	Unrecovered int                 `json:"unrecovered"`
	Convergence *ConvergenceSummary `json:"convergence,omitempty"`
	// SuperchargedClass / VanillaClass break the event down by router
	// class on mixed partial-deployment runs (absent otherwise).
	SuperchargedClass *ClassSummary `json:"supercharged_class,omitempty"`
	VanillaClass      *ClassSummary `json:"vanilla_class,omitempty"`
}

// ClassSummary is one router class's share of an event's impact in a
// partial-deployment run.
type ClassSummary struct {
	Routers     int                 `json:"routers"`
	Affected    int                 `json:"affected"`
	Recovered   int                 `json:"recovered"`
	Unrecovered int                 `json:"unrecovered"`
	Convergence *ConvergenceSummary `json:"convergence,omitempty"`
}

// RunReport is one (mode, table size) execution of the scenario.
type RunReport struct {
	Mode     string   `json:"mode"`
	Prefixes int      `json:"prefixes"`
	Peers    []string `json:"peers"`
	// Routers lists a multi-router deployment as "name" / "name*"
	// (starred = supercharged); single-router runs omit it.
	Routers      []string      `json:"routers,omitempty"`
	Groups       int           `json:"groups"`
	RuleRewrites int           `json:"rule_rewrites"`
	FIBWrites    uint64        `json:"fib_writes"`
	ElapsedMS    float64       `json:"elapsed_ms"`
	Events       []EventReport `json:"events"`
}

// Report is the full result of a scenario execution.
type Report struct {
	Scenario    string      `json:"scenario"`
	Description string      `json:"description,omitempty"`
	Seed        int64       `json:"seed"`
	Runs        []RunReport `json:"runs"`
}

func buildRunReport(res *sim.TimelineResult) RunReport {
	run := RunReport{
		Mode:         res.Mode.String(),
		Prefixes:     res.NumPrefixes,
		Peers:        res.Peers,
		Groups:       res.Groups,
		RuleRewrites: res.RuleRewrites,
		FIBWrites:    res.FIBWrites,
		ElapsedMS:    durMS(res.Elapsed),
	}
	for _, r := range res.Routers {
		name := r.Name
		if r.Supercharged {
			name += "*"
		}
		run.Routers = append(run.Routers, name)
	}
	for _, ev := range res.Events {
		er := EventReport{
			Index:       ev.Index,
			Kind:        ev.Kind,
			Peer:        ev.Peer,
			AtMS:        durMS(ev.At),
			DetectMS:    durMS(ev.DetectAt),
			Affected:    ev.Affected,
			Recovered:   ev.Recovered,
			Unrecovered: ev.Unrecovered,
			Convergence: summarizeConv(ev.Convergence),
		}
		er.SuperchargedClass = summarizeClass(ev.SuperchargedClass)
		er.VanillaClass = summarizeClass(ev.VanillaClass)
		run.Events = append(run.Events, er)
	}
	return run
}

// summarizeConv condenses raw blackout gaps (nil when there are none).
func summarizeConv(conv []time.Duration) *ConvergenceSummary {
	if len(conv) == 0 {
		return nil
	}
	s := metrics.SummarizeDurations(conv)
	return &ConvergenceSummary{
		Samples: s.N,
		MinMS:   s.Min * 1e3,
		P50MS:   s.Median * 1e3,
		P95MS:   s.P95 * 1e3,
		MaxMS:   s.Max * 1e3,
	}
}

// summarizeClass maps one simulator class breakdown into report form.
func summarizeClass(cl *sim.ClassResult) *ClassSummary {
	if cl == nil {
		return nil
	}
	return &ClassSummary{
		Routers:     cl.Routers,
		Affected:    cl.Affected,
		Recovered:   cl.Recovered,
		Unrecovered: cl.Unrecovered,
		Convergence: summarizeConv(cl.Convergence),
	}
}

func durMS(d time.Duration) float64 { return float64(d) / 1e6 }

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteCSV renders the report as one CSV row per (run, event).
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"scenario", "mode", "prefixes", "seed", "event", "kind", "peer",
		"at_ms", "detect_ms", "affected", "recovered", "unrecovered",
		"conv_min_ms", "conv_p50_ms", "conv_p95_ms", "conv_max_ms",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, run := range r.Runs {
		for _, ev := range run.Events {
			row := []string{
				r.Scenario, run.Mode, strconv.Itoa(run.Prefixes),
				strconv.FormatInt(r.Seed, 10), strconv.Itoa(ev.Index),
				string(ev.Kind), ev.Peer,
				fms(ev.AtMS), fms(ev.DetectMS),
				strconv.Itoa(ev.Affected), strconv.Itoa(ev.Recovered),
				strconv.Itoa(ev.Unrecovered),
			}
			if ev.Convergence != nil {
				row = append(row, fms(ev.Convergence.MinMS), fms(ev.Convergence.P50MS),
					fms(ev.Convergence.P95MS), fms(ev.Convergence.MaxMS))
			} else {
				row = append(row, "", "", "", "")
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fms(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// RenderTable renders the report as a fixed-width human-readable table.
func (r *Report) RenderTable() string {
	t := &metrics.Table{Header: []string{
		"mode", "prefixes", "event", "kind", "peer", "detect",
		"affected", "recovered", "conv p50", "conv max",
	}}
	for _, run := range r.Runs {
		for _, ev := range run.Events {
			p50, max := "-", "-"
			if ev.Convergence != nil {
				p50 = metrics.Seconds(ev.Convergence.P50MS / 1e3)
				max = metrics.Seconds(ev.Convergence.MaxMS / 1e3)
			}
			detect := "-"
			if ev.DetectMS > 0 {
				detect = metrics.Seconds(ev.DetectMS / 1e3)
			}
			t.Add(run.Mode, run.Prefixes, ev.Index, ev.Kind, ev.Peer, detect,
				ev.Affected, ev.Recovered, p50, max)
		}
	}
	return t.Render()
}

// Headline extracts the paper's comparison from a two-mode report: per
// table size, the worst convergence of the first traffic-affecting event
// in each mode. It is what `cmd/scenario run paper-fig5 --mode both`
// prints under the JSON.
func (r *Report) Headline() string {
	type cell struct{ standalone, supercharged float64 }
	sizes := make(map[int]*cell)
	var order []int
	for _, run := range r.Runs {
		for _, ev := range run.Events {
			if ev.Convergence == nil {
				continue
			}
			c := sizes[run.Prefixes]
			if c == nil {
				c = &cell{}
				sizes[run.Prefixes] = c
				order = append(order, run.Prefixes)
			}
			// Worst converging event of the run, per mode.
			if run.Mode == sim.Supercharged.String() {
				if ev.Convergence.MaxMS > c.supercharged {
					c.supercharged = ev.Convergence.MaxMS
				}
			} else if ev.Convergence.MaxMS > c.standalone {
				c.standalone = ev.Convergence.MaxMS
			}
		}
	}
	if len(order) == 0 {
		return ""
	}
	t := &metrics.Table{Header: []string{"prefixes", "standalone max", "supercharged max"}}
	for _, n := range order {
		c := sizes[n]
		t.Add(n, cellMS(c.standalone), cellMS(c.supercharged))
	}
	return t.Render()
}

func cellMS(ms float64) string {
	if ms == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0fms", ms)
}
