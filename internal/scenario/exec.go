package scenario

import (
	"context"
	"fmt"
	"io"

	"supercharged/internal/feed"
	"supercharged/internal/sim"
	"supercharged/internal/telemetry"
)

// DefaultPrefixes is the table size used when neither the spec nor the
// caller picks one.
const DefaultPrefixes = 5000

// Options parameterizes one scenario execution.
type Options struct {
	// Modes lists the router modes to run (default: standalone then
	// supercharged, so reports always compare the two).
	Modes []sim.Mode
	// Prefixes overrides the table size and disables the spec's sweep.
	Prefixes int
	// Flows overrides the probed-flow count.
	Flows int
	// Seed drives every random choice (default 1); the same seed yields
	// an identical report.
	Seed int64
	// Table overrides the spec's MRT dump path (replay a real RIB
	// through any scenario without editing it). Empty keeps the spec's.
	Table string
	// Progress, if set, receives one line per run.
	Progress io.Writer
	// Instrument attaches telemetry to every run (zero value = off).
	Instrument Instrumentation
}

// Instrumentation bundles the optional observability attachments a run
// carries: a virtual-time trace recorder and a metrics registry. The
// zero value disables both — the simulator's hooks compile to no-ops.
type Instrumentation struct {
	Trace     *telemetry.Trace
	Telemetry *telemetry.Registry
}

// Sizes returns the table sizes one execution of the spec covers:
// override when positive (disabling the spec's sweep), else the spec's
// PrefixSweep, else its single default size. This is the size axis a
// parallel sweep (internal/sweep) expands into independent run units.
func (s Spec) Sizes(override int) []int {
	if override > 0 {
		return []int{override}
	}
	if len(s.PrefixSweep) > 0 {
		return append([]int(nil), s.PrefixSweep...)
	}
	n := s.Prefixes
	if n == 0 {
		n = DefaultPrefixes
	}
	return []int{n}
}

// RunOne executes spec exactly once — one mode, one table size — and
// returns that single run's report. It is the unit of work a parallel
// sweep distributes across workers: per-(mode, size) runs are fully
// independent (each builds its own virtual-clock lab), so RunOne is safe
// to call concurrently. The context cancels the underlying simulation
// between events; flows and seed of zero take the usual defaults.
func RunOne(ctx context.Context, spec Spec, mode sim.Mode, prefixes, flows int, seed int64) (RunReport, error) {
	return RunOneInstrumented(ctx, spec, mode, prefixes, flows, seed, Instrumentation{})
}

// RunOneInstrumented is RunOne with telemetry attached: ins.Trace
// records the run's virtual-time pipeline spans and ins.Telemetry its
// metric series. The measurements are byte-identical to an
// uninstrumented run — telemetry observes the model, it never steers it.
func RunOneInstrumented(ctx context.Context, spec Spec, mode sim.Mode, prefixes, flows int, seed int64, ins Instrumentation) (RunReport, error) {
	if err := spec.Validate(); err != nil {
		return RunReport{}, err
	}
	if prefixes <= 0 {
		prefixes = spec.Sizes(0)[0]
	}
	if seed == 0 {
		seed = 1
	}
	cfg := spec.compile(mode, prefixes, flows, seed)
	cfg.Trace = ins.Trace
	cfg.Telemetry = ins.Telemetry
	if spec.Table != "" {
		table, err := LoadTable(spec.Table)
		if err != nil {
			return RunReport{}, err
		}
		cfg.Table = table
	}
	res, err := sim.RunTimeline(ctx, cfg)
	if err != nil {
		return RunReport{}, fmt.Errorf("scenario %q (%s, %d prefixes): %w", spec.Name, mode, prefixes, err)
	}
	return buildRunReport(res), nil
}

// Run executes spec in every requested mode (and, for sweeping specs, at
// every table size) and assembles the per-event convergence report. The
// context cancels the execution between simulator events.
func Run(ctx context.Context, spec Spec, opts Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	modes := opts.Modes
	if len(modes) == 0 {
		modes = []sim.Mode{sim.Standalone, sim.Supercharged}
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	if opts.Table != "" {
		spec.Table = opts.Table
	}
	var table *feed.Table
	if spec.Table != "" {
		var err error
		if table, err = LoadTable(spec.Table); err != nil {
			return nil, err
		}
	}
	sizes := spec.Sizes(opts.Prefixes)

	rep := &Report{Scenario: spec.Name, Description: spec.Description, Seed: seed}
	for _, mode := range modes {
		for _, n := range sizes {
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "scenario %s: %s @ %d prefixes...\n", spec.Name, mode, n)
			}
			cfg := spec.compile(mode, n, opts.Flows, seed)
			cfg.Trace = opts.Instrument.Trace
			cfg.Telemetry = opts.Instrument.Telemetry
			cfg.Table = table
			res, err := sim.RunTimeline(ctx, cfg)
			if err != nil {
				return nil, fmt.Errorf("scenario %q (%s, %d prefixes): %w", spec.Name, mode, n, err)
			}
			rep.Runs = append(rep.Runs, buildRunReport(res))
		}
	}
	return rep, nil
}

// RunNamed looks up and runs a registered scenario.
func RunNamed(ctx context.Context, name string, opts Options) (*Report, error) {
	spec, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have: %v)", name, Names())
	}
	return Run(ctx, spec, opts)
}
