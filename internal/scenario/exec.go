package scenario

import (
	"context"
	"fmt"
	"io"

	"supercharged/internal/clock"
	"supercharged/internal/feed"
	"supercharged/internal/sim"
	"supercharged/internal/telemetry"
)

// DefaultPrefixes is the table size used when neither the spec nor the
// caller picks one.
const DefaultPrefixes = 5000

// Runner is the one scenario execution front door: every knob that used
// to be spread across Options, Instrumentation and positional arguments
// lives here, and every entrypoint (Run, RunNamed, RunUnit — plus the
// deprecated wrappers below) funnels through it. The zero value runs
// the default experiment: standalone vs supercharged on a fresh virtual
// clock, seed 1, spec-chosen sizes, no telemetry.
type Runner struct {
	// Modes lists the router modes to run (default: standalone then
	// supercharged, so reports always compare the two).
	Modes []sim.Mode
	// Prefixes overrides the table size and disables the spec's sweep.
	Prefixes int
	// Flows overrides the probed-flow count.
	Flows int
	// Seed drives every random choice (default 1); the same seed yields
	// an identical report.
	Seed int64
	// Table overrides the spec's MRT dump path (replay a real RIB
	// through any scenario without editing it). Empty keeps the spec's.
	Table string
	// Progress, if set, receives one line per run.
	Progress io.Writer
	// Trace, if set, records every run's pipeline spans in source time.
	Trace *telemetry.Trace
	// Telemetry, if set, receives every run's metric series.
	Telemetry *telemetry.Registry
	// Source, if set, supplies the time source for each run. It is a
	// factory, not a value: every run owns its lab and must own its
	// source, so sharing one Source across runs would leak state between
	// them. Nil runs each lab on a fresh virtual clock at the Unix epoch
	// — the deterministic default whose reports are byte-reproducible.
	Source func() clock.Source
}

// modes returns the mode list with the compare-both default applied.
func (r Runner) modes() []sim.Mode {
	if len(r.Modes) > 0 {
		return r.Modes
	}
	return []sim.Mode{sim.Standalone, sim.Supercharged}
}

// Run executes spec in every requested mode (and, for sweeping specs, at
// every table size) and assembles the per-event convergence report. The
// context cancels the execution between simulator events.
func (r Runner) Run(ctx context.Context, spec Spec) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	if r.Table != "" {
		spec.Table = r.Table
	}
	// Load the replay table once for the whole matrix, not per run.
	var table *feed.Table
	if spec.Table != "" {
		var err error
		if table, err = LoadTable(spec.Table); err != nil {
			return nil, err
		}
	}
	sizes := spec.Sizes(r.Prefixes)

	rep := &Report{Scenario: spec.Name, Description: spec.Description, Seed: seed}
	for _, mode := range r.modes() {
		for _, n := range sizes {
			if r.Progress != nil {
				fmt.Fprintf(r.Progress, "scenario %s: %s @ %d prefixes...\n", spec.Name, mode, n)
			}
			run, err := r.runCompiled(ctx, spec, mode, n, r.Flows, seed, table)
			if err != nil {
				return nil, err
			}
			rep.Runs = append(rep.Runs, run)
		}
	}
	return rep, nil
}

// RunNamed looks up and runs a registered scenario.
func (r Runner) RunNamed(ctx context.Context, name string) (*Report, error) {
	spec, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have: %v)", name, Names())
	}
	return r.Run(ctx, spec)
}

// RunUnit executes spec exactly once — one mode, one table size — and
// returns that single run's report. It is the unit of work a parallel
// sweep distributes across workers: per-(mode, size) runs are fully
// independent (each builds its own lab and time source), so RunUnit is
// safe to call concurrently. The positional arguments vary per unit and
// therefore stay explicit rather than living on the Runner; prefixes,
// flows and seed of zero take the usual defaults. The Runner supplies
// everything a whole sweep shares: table override, instrumentation,
// time-source factory.
func (r Runner) RunUnit(ctx context.Context, spec Spec, mode sim.Mode, prefixes, flows int, seed int64) (RunReport, error) {
	if err := spec.Validate(); err != nil {
		return RunReport{}, err
	}
	if prefixes <= 0 {
		prefixes = spec.Sizes(0)[0]
	}
	if flows == 0 {
		flows = r.Flows
	}
	if seed == 0 {
		seed = r.Seed
	}
	if seed == 0 {
		seed = 1
	}
	if r.Table != "" {
		spec.Table = r.Table
	}
	var table *feed.Table
	if spec.Table != "" {
		var err error
		if table, err = LoadTable(spec.Table); err != nil {
			return RunReport{}, err
		}
	}
	return r.runCompiled(ctx, spec, mode, prefixes, flows, seed, table)
}

// runCompiled compiles and executes one (mode, size) cell with the
// runner's instrumentation and time source attached.
func (r Runner) runCompiled(ctx context.Context, spec Spec, mode sim.Mode, prefixes, flows int, seed int64, table *feed.Table) (RunReport, error) {
	cfg := spec.compile(mode, prefixes, flows, seed)
	cfg.Trace = r.Trace
	cfg.Telemetry = r.Telemetry
	cfg.Table = table
	if r.Source != nil {
		cfg.Source = r.Source()
	}
	res, err := sim.RunTimeline(ctx, cfg)
	if err != nil {
		return RunReport{}, fmt.Errorf("scenario %q (%s, %d prefixes): %w", spec.Name, mode, prefixes, err)
	}
	return buildRunReport(res), nil
}

// Sizes returns the table sizes one execution of the spec covers:
// override when positive (disabling the spec's sweep), else the spec's
// PrefixSweep, else its single default size. This is the size axis a
// parallel sweep (internal/sweep) expands into independent run units.
func (s Spec) Sizes(override int) []int {
	if override > 0 {
		return []int{override}
	}
	if len(s.PrefixSweep) > 0 {
		return append([]int(nil), s.PrefixSweep...)
	}
	n := s.Prefixes
	if n == 0 {
		n = DefaultPrefixes
	}
	return []int{n}
}

// --- Deprecated wrappers -----------------------------------------------
//
// The pre-Runner surface: thin adapters so existing call sites keep
// compiling while they migrate. Nothing below adds behavior.

// Options parameterizes one scenario execution.
//
// Deprecated: use Runner, which carries the same knobs plus the
// instrumentation attachments directly.
type Options struct {
	Modes    []sim.Mode
	Prefixes int
	Flows    int
	Seed     int64
	Table    string
	Progress io.Writer
	// Instrument attaches telemetry to every run (zero value = off).
	Instrument Instrumentation
}

// Instrumentation bundles the optional observability attachments a run
// carries: a virtual-time trace recorder and a metrics registry. The
// zero value disables both — the simulator's hooks compile to no-ops.
//
// Deprecated: set Trace and Telemetry on Runner directly.
type Instrumentation struct {
	Trace     *telemetry.Trace
	Telemetry *telemetry.Registry
}

// runner adapts the legacy options bundle onto the Runner it describes.
func (o Options) runner() Runner {
	return Runner{
		Modes:     o.Modes,
		Prefixes:  o.Prefixes,
		Flows:     o.Flows,
		Seed:      o.Seed,
		Table:     o.Table,
		Progress:  o.Progress,
		Trace:     o.Instrument.Trace,
		Telemetry: o.Instrument.Telemetry,
	}
}

// RunOne executes spec exactly once — one mode, one table size.
//
// Deprecated: use Runner{}.RunUnit.
func RunOne(ctx context.Context, spec Spec, mode sim.Mode, prefixes, flows int, seed int64) (RunReport, error) {
	return Runner{}.RunUnit(ctx, spec, mode, prefixes, flows, seed)
}

// RunOneInstrumented is RunOne with telemetry attached.
//
// Deprecated: use Runner{Trace: ..., Telemetry: ...}.RunUnit.
func RunOneInstrumented(ctx context.Context, spec Spec, mode sim.Mode, prefixes, flows int, seed int64, ins Instrumentation) (RunReport, error) {
	return Runner{Trace: ins.Trace, Telemetry: ins.Telemetry}.RunUnit(ctx, spec, mode, prefixes, flows, seed)
}

// Run executes spec under the legacy options bundle.
//
// Deprecated: use Runner.Run.
func Run(ctx context.Context, spec Spec, opts Options) (*Report, error) {
	return opts.runner().Run(ctx, spec)
}

// RunNamed looks up and runs a registered scenario under the legacy
// options bundle.
//
// Deprecated: use Runner.RunNamed.
func RunNamed(ctx context.Context, name string, opts Options) (*Report, error) {
	return opts.runner().RunNamed(ctx, name)
}
