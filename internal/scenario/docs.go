package scenario

import (
	"bytes"
	"fmt"
	"strings"
)

// Generated-docs support: the builtin catalogue section of
// docs/scenarios.md is rendered from the registry (every Spec's
// Description, Paper and Expect fields plus its actual topology and
// timeline), spliced between the markers below, and checked by CI — so
// the documented catalogue can never drift from the registered one.

// Markers bracketing the generated catalogue inside docs/scenarios.md.
const (
	DocsBeginMarker = "<!-- BEGIN GENERATED: builtin catalogue — edit internal/scenario/builtin.go and run `go run ./cmd/scenario docs` -->"
	DocsEndMarker   = "<!-- END GENERATED: builtin catalogue -->"
)

// DocsMarkdown renders the registry's builtin catalogue as the markdown
// section between the docs markers: one entry per builtin with what it
// models, its real topology and timeline, its paper mapping and its
// expected outcome. Pure function of the registry — byte-identical
// whenever the builtins are.
func DocsMarkdown() []byte {
	var b strings.Builder
	for _, s := range List() {
		fmt.Fprintf(&b, "## %s\n\n", s.Name)
		writeWrapped(&b, "**Models:** "+s.Description)
		b.WriteString("\n")
		writeWrapped(&b, "**Topology:** "+topologyLine(s))
		b.WriteString("\n**Timeline:**\n\n")
		for _, ev := range s.Events {
			fmt.Fprintf(&b, "- `t=%v` %s\n", ev.At, eventLine(ev))
		}
		b.WriteString("\n")
		writeWrapped(&b, "**Paper mapping:** "+s.Paper)
		b.WriteString("\n")
		writeWrapped(&b, "**Expected outcome:** "+s.Expect)
		b.WriteString("\n")
	}
	return []byte(strings.TrimSuffix(b.String(), "\n"))
}

// SpliceDocs replaces the generated catalogue between the markers of an
// existing docs file with the current registry rendering.
func SpliceDocs(doc []byte) ([]byte, error) {
	begin := bytes.Index(doc, []byte(DocsBeginMarker))
	end := bytes.Index(doc, []byte(DocsEndMarker))
	if begin < 0 || end < 0 || end < begin {
		return nil, fmt.Errorf("scenario: docs file is missing the generated-catalogue markers")
	}
	var out bytes.Buffer
	out.Write(doc[:begin+len(DocsBeginMarker)])
	out.WriteString("\n\n")
	out.Write(DocsMarkdown())
	out.WriteString("\n\n")
	out.Write(doc[end:])
	return out.Bytes(), nil
}

// topologyLine summarizes a spec's peer set, group size and table sizes.
func topologyLine(s Spec) string {
	var parts []string
	full, windowed, capped := 0, 0, 0
	for _, p := range s.Peers {
		switch {
		case p.Offset > 0:
			windowed++
		case p.Prefixes > 0:
			capped++
		default:
			full++
		}
	}
	peers := fmt.Sprintf("%d peers (%s–%s)", len(s.Peers), s.Peers[0].Name, s.Peers[len(s.Peers)-1].Name)
	if windowed > 0 || capped > 0 {
		var kinds []string
		if full > 0 {
			kinds = append(kinds, fmt.Sprintf("%d full-feed", full))
		}
		if capped > 0 {
			kinds = append(kinds, fmt.Sprintf("%d partial", capped))
		}
		if windowed > 0 {
			kinds = append(kinds, fmt.Sprintf("%d rotated-window", windowed))
		}
		peers += " — " + strings.Join(kinds, ", ")
	}
	parts = append(parts, peers)
	k := s.GroupSize
	if k == 0 {
		k = 2
	}
	parts = append(parts, fmt.Sprintf("backup-groups of k=%d", k))
	switch {
	case len(s.PrefixSweep) > 0:
		sizes := make([]string, len(s.PrefixSweep))
		for i, n := range s.PrefixSweep {
			sizes[i] = fmt.Sprint(n)
		}
		parts = append(parts, "table sizes "+strings.Join(sizes, ", "))
	case s.Prefixes > 0:
		parts = append(parts, fmt.Sprintf("table size %d", s.Prefixes))
	default:
		parts = append(parts, fmt.Sprintf("table size %d (default)", DefaultPrefixes))
	}
	if s.HoldTimer > 0 {
		parts = append(parts, fmt.Sprintf("hold timer %v", s.HoldTimer))
	}
	return strings.Join(parts, "; ") + "."
}

// eventLine renders one event for the catalogue's timeline list.
func eventLine(ev Event) string {
	var args []string
	if ev.Peer != "" {
		args = append(args, "peer="+ev.Peer)
	}
	if len(ev.Peers) > 0 {
		args = append(args, "peers="+strings.Join(ev.Peers, "+"))
	}
	if ev.Hold > 0 {
		args = append(args, fmt.Sprintf("hold=%v", ev.Hold))
	}
	if ev.Fraction > 0 {
		args = append(args, fmt.Sprintf("fraction=%g", ev.Fraction))
	}
	if ev.Rate > 0 {
		args = append(args, fmt.Sprintf("rate=%d/s", ev.Rate))
	}
	if ev.Graceful {
		args = append(args, "graceful")
	}
	if ev.Detection != "" {
		args = append(args, "detection="+string(ev.Detection))
	}
	if len(args) == 0 {
		return fmt.Sprintf("**%s**", ev.Kind)
	}
	return fmt.Sprintf("**%s** (%s)", ev.Kind, strings.Join(args, ", "))
}

// writeWrapped writes s wrapped at 72 columns, followed by a newline.
func writeWrapped(b *strings.Builder, s string) {
	const width = 72
	line := 0
	for _, word := range strings.Fields(s) {
		if line > 0 && line+1+len(word) > width {
			b.WriteString("\n")
			line = 0
		} else if line > 0 {
			b.WriteString(" ")
			line++
		}
		b.WriteString(word)
		line += len(word)
	}
	b.WriteString("\n")
}
