package scenario

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestBuiltinsRegistered(t *testing.T) {
	// The minimum catalogue the subsystem promises.
	for _, name := range []string{
		"paper-fig5", "double-failure", "flap-storm",
		"backup-then-primary", "partial-withdraw",
		"rule-loss", "controller-restart", "holdtimer-failover",
		// Second generation: fabrics, correlated failures, resets, noise.
		"route-server-fabric", "srlg-dual-failure", "maintenance-rolling",
		"session-reset-hard", "session-reset-graceful", "noisy-failover",
	} {
		s, ok := Lookup(name)
		if !ok {
			t.Errorf("builtin %q not registered", name)
			continue
		}
		// docs/scenarios.md is generated from these fields; a builtin
		// without them would render an empty catalogue entry.
		if s.Paper == "" {
			t.Errorf("builtin %q has no paper mapping", name)
		}
		if s.Expect == "" {
			t.Errorf("builtin %q has no expected outcome", name)
		}
	}
}

func TestBuiltinsAreValid(t *testing.T) {
	for _, s := range List() {
		if err := s.Validate(); err != nil {
			t.Errorf("builtin %q invalid: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("builtin %q has no description", s.Name)
		}
	}
}

func TestRegisterRejectsDuplicateName(t *testing.T) {
	s := validSpec()
	s.Name = "test-dup"
	if err := Register(s); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	err := Register(s)
	if err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration error = %v", err)
	}
}

func TestRegisterRejectsInvalidSpec(t *testing.T) {
	s := validSpec()
	s.Name = "test-invalid-reg"
	s.Events = []Event{{At: time.Second, Kind: "no-such-kind"}}
	if err := Register(s); err == nil {
		t.Fatal("invalid spec registered without error")
	}
	if _, ok := Lookup(s.Name); ok {
		t.Fatal("invalid spec landed in the registry")
	}
}

func TestListSortedAndNamesMatch(t *testing.T) {
	specs := List()
	if !sort.SliceIsSorted(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name }) {
		t.Fatal("List() not sorted by name")
	}
	names := Names()
	if len(names) != len(specs) {
		t.Fatalf("Names() len %d != List() len %d", len(names), len(specs))
	}
	for i := range names {
		if names[i] != specs[i].Name {
			t.Fatalf("Names()[%d] = %q, List()[%d].Name = %q", i, names[i], i, specs[i].Name)
		}
	}
}

func TestRunNamedUnknownScenario(t *testing.T) {
	if _, err := RunNamed(context.Background(), "no-such-scenario", Options{}); err == nil {
		t.Fatal("RunNamed of unknown scenario succeeded")
	}
}
