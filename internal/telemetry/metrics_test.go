package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %v, want 1", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	var r *Registry
	if r.Counter("x", "") != nil || r.Gauge("x", "") != nil || r.Histogram("x", "", nil) != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil registry write: %v", err)
	}
}

// The disabled configuration (nil receivers everywhere) must not
// allocate: it is on the simulator's hot paths and pinned the same way
// core's churn filter is.
func TestNilSinkZeroAllocs(t *testing.T) {
	var c *Counter
	var h *Histogram
	var tr *Trace
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(0.25)
		tr.Add(Span{Name: "x"})
	}); n != 0 {
		t.Fatalf("nil sink allocates %v/op, want 0", n)
	}
}

// The enabled steady-state paths must not allocate either: counters and
// histogram observes are atomics only.
func TestEnabledHotPathZeroAllocs(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hot_total", "")
	h := reg.Histogram("hot_seconds", "", nil)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(0.042)
	}); n != 0 {
		t.Fatalf("enabled hot path allocates %v/op, want 0", n)
	}
}

func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "first")
	b := reg.Counter("dup_total", "second help is ignored")
	if a != b {
		t.Fatal("re-registration must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	reg.Gauge("dup_total", "")
}

func TestHistogramBucketing(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.1, 0.5, 2} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got := h.Sum(); got != 2.65 {
		t.Fatalf("sum = %v, want 2.65", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Cumulative: le=0.1 holds 2 (0.05 and the inclusive 0.1), le=1
	// holds 3, +Inf holds all 4.
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesLabels(t *testing.T) {
	if got := Series("peer_up", "peer", "R2"); got != `peer_up{peer="R2"}` {
		t.Fatalf("Series = %q", got)
	}
	reg := NewRegistry()
	reg.Counter(Series("peer_up_total", "peer", "R1"), "per-peer ups").Inc()
	reg.Counter(Series("peer_up_total", "peer", "R2"), "per-peer ups").Add(2)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE peer_up_total counter") != 1 {
		t.Fatalf("labeled series must share one TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `peer_up_total{peer="R1"} 1`) || !strings.Contains(out, `peer_up_total{peer="R2"} 2`) {
		t.Fatalf("missing labeled samples:\n%s", out)
	}
}

// Golden-file pin of the exposition format: a fixed registry must render
// byte-identically. Guards HELP/TYPE ordering, cumulative buckets,
// label merging and float formatting against accidental drift.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_updates_total", "Updates applied.").Add(42)
	reg.Gauge("demo_table_size", "Current table size.").Set(5000)
	reg.GaugeFunc("demo_uptime_ratio", "Computed at scrape.", func() float64 { return 0.25 })
	h := reg.Histogram("demo_latency_seconds", "Convergence latency.", []float64{0.1, 0.25, 1})
	h.Observe(0.05)
	h.Observe(0.2)
	h.Observe(3)
	reg.Counter(Series("demo_peer_state_total", "peer", "R1"), "Per-peer transitions.").Inc()
	reg.Counter(Series("demo_peer_state_total", "peer", "R2"), "Per-peer transitions.").Add(3)
	hl := reg.Histogram(Series("demo_labeled_seconds", "mode", "fast"), "Labeled histogram.", []float64{1})
	hl.Observe(0.5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// Registration and updates from many goroutines must be race-free (run
// under -race in CI) and converge to exact totals.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Everyone registers the same names — get-or-create must
			// hand back the shared instances.
			c := reg.Counter("conc_total", "")
			h := reg.Histogram("conc_seconds", "", nil)
			gauge := reg.Gauge("conc_gauge", "")
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(0.01)
				gauge.Add(1)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := reg.WritePrometheus(&buf); err != nil {
						t.Errorf("concurrent write: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("conc_total", "").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Histogram("conc_seconds", "", nil).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("conc_gauge", "").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %v, want %d", got, goroutines*perG)
	}
}

func TestSyncWriterSerializes(t *testing.T) {
	var buf bytes.Buffer
	w := NewSyncWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := w.Write([]byte("one atomic line\n")); err != nil {
					t.Errorf("write: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line != "one atomic line" {
			t.Fatalf("interleaved write: %q", line)
		}
	}
}
