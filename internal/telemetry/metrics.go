package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. All methods are safe on
// a nil receiver (no-ops), so disabled telemetry costs one branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (CAS loop; contended adds retry).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bounds are inclusive upper bounds, observations above the last
// bound land only in the implicit +Inf bucket. The hot path (Observe) is
// a linear bucket scan plus atomic adds — no locks, no allocations.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // per-bucket (non-cumulative; summed at scrape)
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	n      atomic.Uint64
}

// DefBuckets are the default latency bounds in seconds, spanning the
// paper's landscape: ~150 ms supercharged convergence on the low end,
// multi-minute standalone FIB walks on the high end.
var DefBuckets = []float64{
	.001, .005, .01, .025, .05, .1, .15, .25, .5, 1, 2.5, 5, 10, 30, 60, 150,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.n.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metricKind tags a registered series for the TYPE line.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered time series.
type series struct {
	name   string // full series name, labels included
	family string // name with labels stripped — HELP/TYPE unit
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	gf     func() float64
	h      *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration methods are get-or-create and
// idempotent per name; a nil *Registry returns nil metrics from every
// getter, which is the disabled configuration (all hooks no-op).
type Registry struct {
	mu     sync.Mutex
	byName map[string]*series
	order  []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*series)}
}

// Series renders a full series name with label pairs, for registering
// labeled metrics: Series("peer_up", "peer", "203.0.113.1") yields
// `peer_up{peer="203.0.113.1"}`. kv must alternate key, value.
func Series(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("telemetry: Series needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(strconv.Quote(kv[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// familyOf strips the label set from a full series name.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// lookup returns the existing series or registers a new one built by mk.
func (r *Registry) lookup(name, help string, kind metricKind, mk func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byName[name]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as a different kind", name))
		}
		return s
	}
	s := mk()
	s.name, s.family, s.help, s.kind = name, familyOf(name), help, kind
	r.byName[name] = s
	r.order = append(r.order, s)
	return s
}

// Counter returns the counter registered under name, creating it on
// first use. Nil registry returns nil (a no-op counter).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, func() *series { return &series{c: new(Counter)} }).c
}

// Gauge returns the gauge registered under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, func() *series { return &series{g: new(Gauge)} }).g
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (process stats, table sizes). Re-registering the same name
// replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, kindGaugeFunc, func() *series { return &series{} })
	r.mu.Lock()
	s.gf = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name with the given
// ascending upper bounds (nil bounds = DefBuckets). Bounds are fixed at
// first registration; later calls return the existing histogram.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("telemetry: histogram bounds must be ascending")
	}
	return r.lookup(name, help, kindHistogram, func() *series {
		return &series{h: &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Uint64, len(bounds)),
		}}
	}).h
}

// snapshot returns the registered series grouped per family in a stable
// order: families sorted by name, series within a family in
// registration order.
func (r *Registry) snapshot() [][]*series {
	r.mu.Lock()
	defer r.mu.Unlock()
	byFamily := make(map[string][]*series)
	var families []string
	for _, s := range r.order {
		if _, ok := byFamily[s.family]; !ok {
			families = append(families, s.family)
		}
		byFamily[s.family] = append(byFamily[s.family], s)
	}
	sort.Strings(families)
	out := make([][]*series, 0, len(families))
	for _, f := range families {
		out = append(out, byFamily[f])
	}
	return out
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): one HELP/TYPE pair per
// family, histograms as cumulative _bucket series with le labels plus
// _sum and _count. Safe to call concurrently with metric updates; a nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, family := range r.snapshot() {
		head := family[0]
		if head.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", head.family, head.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", head.family, typeName(head.kind)); err != nil {
			return err
		}
		for _, s := range family {
			if err := writeSeries(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

func writeSeries(w io.Writer, s *series) error {
	switch s.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", s.name, s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(s.g.Value()))
		return err
	case kindGaugeFunc:
		v := 0.0
		if s.gf != nil {
			v = s.gf()
		}
		_, err := fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(v))
		return err
	case kindHistogram:
		h := s.h
		// Cumulative buckets: each le bound includes everything below it.
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n", bucketSeries(s.name, formatFloat(b)), cum); err != nil {
				return err
			}
		}
		cum += h.inf.Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", bucketSeries(s.name, "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", suffixSeries(s.name, "_sum"), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", suffixSeries(s.name, "_count"), h.Count())
		return err
	}
	return nil
}

// bucketSeries renders name_bucket{...,le="bound"}, merging with any
// existing label set on the series name.
func bucketSeries(name, le string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + "_bucket{" + name[i+1:len(name)-1] + `,le="` + le + `"}`
	}
	return name + `_bucket{le="` + le + `"}`
}

// suffixSeries renders name_sum / name_count, preserving labels.
func suffixSeries(name, suffix string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + suffix + name[i:]
	}
	return name + suffix
}

// formatFloat renders floats the way Prometheus expects: shortest exact
// decimal, integral values without a trailing ".0".
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
