package telemetry

import (
	"sort"
	"sync"
	"time"
)

// RunInfo is one tracked unit of work as the /runs page reports it.
type RunInfo struct {
	Key     string        `json:"key"`
	Started time.Time     `json:"started"`
	Wall    time.Duration `json:"wall_ns,omitempty"`
	Status  string        `json:"status"` // running, ok, cached, failed
	Err     string        `json:"err,omitempty"`
}

// RunSnapshot is the JSON payload of the /runs status page: aggregate
// progress counters plus the in-flight and most recently finished units.
type RunSnapshot struct {
	Total   int       `json:"total"`
	Done    int       `json:"done"`
	Failed  int       `json:"failed"`
	Cached  int       `json:"cached"`
	Active  []RunInfo `json:"active"`
	Recent  []RunInfo `json:"recent"`
	Started time.Time `json:"started"`
}

// recentKeep bounds the finished-unit ring on the /runs page.
const recentKeep = 32

// RunTracker follows a sweep's units through their lifecycle for the
// live /runs page. Nil-safe like the rest of the package: a nil tracker
// ignores every call and snapshots empty.
type RunTracker struct {
	mu      sync.Mutex
	total   int
	done    int
	failed  int
	cached  int
	started time.Time
	active  map[string]RunInfo
	recent  []RunInfo
}

// NewRunTracker returns a tracker expecting total units (0 if unknown).
func NewRunTracker(total int) *RunTracker {
	return &RunTracker{
		total:   total,
		started: time.Now(),
		active:  make(map[string]RunInfo),
	}
}

// SetTotal (re)declares the expected unit count.
func (rt *RunTracker) SetTotal(n int) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.total = n
	rt.mu.Unlock()
}

// Start marks a unit as in flight.
func (rt *RunTracker) Start(key string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	rt.active[key] = RunInfo{Key: key, Started: time.Now(), Status: "running"}
	rt.mu.Unlock()
}

// Finish marks a unit done. cached and err describe the outcome; wall is
// the unit's host wall-clock cost.
func (rt *RunTracker) Finish(key string, wall time.Duration, cached bool, err error) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	info, ok := rt.active[key]
	if !ok {
		info = RunInfo{Key: key, Started: time.Now()}
	}
	delete(rt.active, key)
	info.Wall = wall
	switch {
	case err != nil:
		info.Status, info.Err = "failed", err.Error()
		rt.failed++
	case cached:
		info.Status = "cached"
		rt.cached++
	default:
		info.Status = "ok"
	}
	rt.done++
	rt.recent = append(rt.recent, info)
	if len(rt.recent) > recentKeep {
		rt.recent = rt.recent[len(rt.recent)-recentKeep:]
	}
}

// Snapshot returns the current state for the /runs page. Active units
// are sorted by start time so the longest-running lead the list.
func (rt *RunTracker) Snapshot() RunSnapshot {
	if rt == nil {
		return RunSnapshot{}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	snap := RunSnapshot{
		Total:   rt.total,
		Done:    rt.done,
		Failed:  rt.failed,
		Cached:  rt.cached,
		Started: rt.started,
		Active:  make([]RunInfo, 0, len(rt.active)),
		Recent:  append([]RunInfo(nil), rt.recent...),
	}
	for _, info := range rt.active {
		snap.Active = append(snap.Active, info)
	}
	sort.Slice(snap.Active, func(i, j int) bool {
		if !snap.Active[i].Started.Equal(snap.Active[j].Started) {
			return snap.Active[i].Started.Before(snap.Active[j].Started)
		}
		return snap.Active[i].Key < snap.Active[j].Key
	})
	return snap
}
