package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleTrace() *Trace {
	tr := NewTrace()
	pid := tr.Process("supercharged · 1000 prefixes · seed 1")
	tr.Thread(pid, 0, "pipeline")
	tr.Thread(pid, 1, "#0 peer-down [R2]")
	tr.Add(Span{Name: "setup", Cat: "pipeline", PID: pid, TID: 0, Start: 0, Dur: 5 * time.Second})
	tr.Add(Span{Name: "event", Cat: "event", PID: pid, TID: 1, Start: 10 * time.Second, Kind: "peer-down", Peer: "R2"})
	tr.Add(Span{
		Name: "flow-converged", Cat: "pipeline", PID: pid, TID: 1,
		Start: 10*time.Second + 90*time.Millisecond, Dur: 130 * time.Millisecond,
		Prefix: "10.0.0.0/24",
	})
	return tr
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if want := tr.Spans(); !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"name\":\"ok\"}\nnot json\n")); err == nil {
		t.Fatal("want error on malformed line")
	}
}

// The Chrome export must be one valid JSON object whose events carry the
// ns→µs conversion, the metadata names, and instant markers for
// zero-duration spans.
func TestChromeTraceExport(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
	}
	pn := doc.TraceEvents[byName["process_name"]]
	if pn.Ph != "M" || pn.Args["name"] != "supercharged · 1000 prefixes · seed 1" {
		t.Fatalf("process metadata %+v", pn)
	}
	setup := doc.TraceEvents[byName["setup"]]
	if setup.Ph != "X" || setup.Dur != 5e6 { // 5 virtual s = 5e6 µs
		t.Fatalf("setup span %+v, want X with dur 5e6µs", setup)
	}
	event := doc.TraceEvents[byName["event"]]
	if event.Ph != "i" || event.TS != 10e6 || event.Args["peer"] != "R2" {
		t.Fatalf("instant event %+v", event)
	}
	conv := doc.TraceEvents[byName["flow-converged"]]
	if conv.TS != 10.09e6 || conv.Dur != 130e3 || conv.Args["prefix"] != "10.0.0.0/24" {
		t.Fatalf("converge span %+v", conv)
	}
}

func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.Add(Span{Name: "dropped"})
	tr.Thread(1, 0, "x")
	if tr.Process("x") != 0 || tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil trace must drop everything")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil JSONL: err=%v len=%d", err, buf.Len())
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil chrome trace invalid: %v", err)
	}
}

func TestRunTrackerLifecycle(t *testing.T) {
	rt := NewRunTracker(3)
	rt.Start("a")
	rt.Start("b")
	snap := rt.Snapshot()
	if snap.Total != 3 || len(snap.Active) != 2 || snap.Done != 0 {
		t.Fatalf("mid-flight snapshot %+v", snap)
	}
	rt.Finish("a", 10*time.Millisecond, false, nil)
	rt.Finish("b", time.Millisecond, true, nil)
	rt.Start("c")
	rt.Finish("c", time.Millisecond, false, context.DeadlineExceeded)
	snap = rt.Snapshot()
	if snap.Done != 3 || snap.Cached != 1 || snap.Failed != 1 || len(snap.Active) != 0 {
		t.Fatalf("final snapshot %+v", snap)
	}
	statuses := map[string]string{}
	for _, r := range snap.Recent {
		statuses[r.Key] = r.Status
	}
	want := map[string]string{"a": "ok", "b": "cached", "c": "failed"}
	if !reflect.DeepEqual(statuses, want) {
		t.Fatalf("statuses %v, want %v", statuses, want)
	}

	var nilRT *RunTracker
	nilRT.SetTotal(1)
	nilRT.Start("x")
	nilRT.Finish("x", 0, false, nil)
	if s := nilRT.Snapshot(); s.Total != 0 || s.Done != 0 {
		t.Fatalf("nil tracker snapshot %+v", s)
	}
}

// The HTTP handler end to end: /metrics in exposition format with the
// scrape content type, /runs as JSON, pprof reachable.
func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("handler_test_total", "help").Add(7)
	rt := NewRunTracker(1)
	rt.Start("unit-1")
	srv := httptest.NewServer(Handler(reg, rt))
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp, sb.String()
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "handler_test_total 7") {
		t.Fatalf("/metrics: %d\n%s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}

	resp, body = get("/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/runs: %d", resp.StatusCode)
	}
	var snap RunSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/runs not JSON: %v\n%s", err, body)
	}
	if snap.Total != 1 || len(snap.Active) != 1 || snap.Active[0].Key != "unit-1" {
		t.Fatalf("/runs snapshot %+v", snap)
	}

	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", resp.StatusCode)
	}

	resp, body = get("/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d\n%s", resp.StatusCode, body)
	}
}

func TestServeBindsAndCloses(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr + "/metrics"); err == nil {
		t.Fatal("server still reachable after Close")
	}
}
