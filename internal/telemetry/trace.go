package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one recorded interval (or instant, when Dur is zero) of the
// convergence pipeline. Start and Dur are *source* time: offsets from
// the epoch of the time source that drove the run — time.Unix(0,0) for
// the default virtual clock, the wall instant the lab was built for a
// real-time source — never ambient host time. A span is keyed by the
// process/thread pair its recorder registered — by convention pid = one
// (mode, size) run, tid = one timeline event — plus the structured
// fields below.
type Span struct {
	// Name is the span's pipeline stage (see docs/observability.md for
	// the catalogue): setup, feed-ingest, failure-detected,
	// controller-notified, churn-filter, rules-computed, rule-install,
	// flow-converged, ...
	Name string `json:"name"`
	// Cat groups spans for trace-viewer filtering: pipeline, event, sweep.
	Cat string `json:"cat,omitempty"`
	// PID/TID place the span on the trace viewer's process/thread grid.
	PID int `json:"pid"`
	TID int `json:"tid"`
	// Start is the virtual-time offset of the span's begin; Dur its
	// virtual duration (0 = instant marker).
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`

	// Optional structured arguments.
	Peer   string `json:"peer,omitempty"`   // BGP peer involved
	Kind   string `json:"kind,omitempty"`   // timeline event kind
	Prefix string `json:"prefix,omitempty"` // probed prefix (flow spans)
	N      int    `json:"n,omitempty"`      // input count (updates, rules)
	Out    int    `json:"out,omitempty"`    // output count (after filtering)
}

// Trace records spans from one or more runs, whichever time source
// drove them (the offsets stay comparable run-to-run). All methods
// are nil-safe: a nil *Trace drops everything, which is the disabled
// configuration. Recording takes one mutex-guarded append; traces are
// per-run (per sweep unit), so there is no cross-run contention.
type Trace struct {
	mu      sync.Mutex
	spans   []Span
	procs   map[int]string // pid -> process name
	threads map[[2]int]string
	nextPID int
	procOrd []int
	thrOrd  [][2]int
}

// NewTrace returns an empty trace recorder.
func NewTrace() *Trace {
	return &Trace{
		procs:   make(map[int]string),
		threads: make(map[[2]int]string),
	}
}

// Process registers a named process row (one per run, by convention)
// and returns its pid. Returns 0 on a nil trace.
func (t *Trace) Process(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextPID++
	pid := t.nextPID
	t.procs[pid] = name
	t.procOrd = append(t.procOrd, pid)
	return pid
}

// Thread names a thread row within a process (one per timeline event,
// by convention; tid 0 is the run-level row).
func (t *Trace) Thread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := [2]int{pid, tid}
	if _, ok := t.threads[k]; !ok {
		t.thrOrd = append(t.thrOrd, k)
	}
	t.threads[k] = name
}

// Add records a span.
func (t *Trace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Len returns the number of recorded spans (0 on nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// WriteJSONL writes one span per line as JSON — the stable,
// grep/jq-friendly export. Round-trips through ReadJSONL.
func (t *Trace) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.Spans() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses spans written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Span, error) {
	var spans []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			return spans, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: bad span at #%d: %w", len(spans), err)
		}
		spans = append(spans, s)
	}
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
// Timestamps and durations are microseconds per the format spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the trace in Chrome trace-event JSON (the
// {"traceEvents": [...]} object form), openable directly in Perfetto or
// chrome://tracing. Spans become "X" complete events; zero-duration
// spans become "i" instants; process and thread names become "M"
// metadata events. Virtual nanoseconds map to trace microseconds, so
// the viewer's time axis reads directly in virtual time.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	events := make([]chromeEvent, 0, len(t.spans)+len(t.procs)+len(t.threads))
	for _, pid := range t.procOrd {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": t.procs[pid]},
		})
	}
	for _, k := range t.thrOrd {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: k[0], TID: k[1],
			Args: map[string]any{"name": t.threads[k]},
		})
	}
	spans := append([]Span(nil), t.spans...)
	t.mu.Unlock()

	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start) / 1e3, // ns -> µs
			Dur:  float64(s.Dur) / 1e3,
			PID:  s.PID,
			TID:  s.TID,
		}
		if s.Dur == 0 {
			ev.Ph, ev.Dur = "i", 0
		}
		args := make(map[string]any)
		if s.Peer != "" {
			args["peer"] = s.Peer
		}
		if s.Kind != "" {
			args["kind"] = s.Kind
		}
		if s.Prefix != "" {
			args["prefix"] = s.Prefix
		}
		if s.N != 0 {
			args["n"] = s.N
		}
		if s.Out != 0 {
			args["out"] = s.Out
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
