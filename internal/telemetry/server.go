package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in observability endpoint: /metrics (Prometheus
// text), /runs (JSON sweep status), /debug/pprof/* (the standard Go
// profiles), and a plain-text index at /.
type Server struct {
	// Addr is the bound listen address (useful when the requested port
	// was :0).
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Handler builds the observability mux for reg and runs (either may be
// nil; the corresponding endpoint then serves empty output).
func Handler(reg *Registry, runs *RunTracker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "supercharged observability endpoint")
		fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
		fmt.Fprintln(w, "  /runs          sweep status (JSON)")
		fmt.Fprintln(w, "  /debug/pprof/  Go runtime profiles")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(runs.Snapshot())
	})
	// net/http/pprof only self-registers on http.DefaultServeMux; wire
	// its handlers onto this mux explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves the observability endpoints in a
// background goroutine until Close. The returned Server's Addr holds
// the concrete bound address (resolving :0 port requests).
func Serve(addr string, reg *Registry, runs *RunTracker) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv: &http.Server{
			Handler:           Handler(reg, runs),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
