// Package telemetry is the observability layer of the convergence lab:
// a dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms) that renders the Prometheus text exposition format, a
// virtual-time trace recorder that emits the convergence pipeline's
// spans as JSONL and Chrome trace-event JSON (openable directly in
// Perfetto), a run tracker backing the live /runs status page, and the
// opt-in HTTP server that serves all of it plus net/http/pprof.
//
// Two properties shape every API here:
//
//   - Nil is off. Every hot-path method — Counter.Inc, Gauge.Set,
//     Histogram.Observe, Trace.Add, RunTracker.Start — is safe on a nil
//     receiver and compiles down to one branch when telemetry is
//     disabled. Instrumented packages hold possibly-nil pointers and
//     call unconditionally; the zero-alloc churn-filter pin
//     (internal/core's AllocsPerRun test) stays green with hooks in
//     place.
//
//   - Enabled paths stay allocation-free too. Counters and gauges are
//     single atomic words; histograms are atomic bucket arrays with a
//     CAS-updated float sum. Only registration (once per series) and
//     scraping (once per poll) take locks or allocate.
//
// The trace recorder measures in *virtual* time: spans carry offsets of
// the lab's discrete-event clock, so a 1M-prefix run that takes 30 s of
// host time renders as the handful of virtual seconds the model says
// convergence took — the same numbers the reports print.
package telemetry

import (
	"io"
	"sync"
)

// SyncWriter serializes writes from multiple goroutines onto one
// underlying writer, one Write call per Write — progress lines from a
// sweep's worker pool cannot interleave mid-line. A nil *SyncWriter
// discards writes.
type SyncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewSyncWriter wraps w; a nil w yields a discarding writer.
func NewSyncWriter(w io.Writer) *SyncWriter {
	return &SyncWriter{w: w}
}

// Write implements io.Writer under the mutex.
func (s *SyncWriter) Write(p []byte) (int, error) {
	if s == nil || s.w == nil {
		return len(p), nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
