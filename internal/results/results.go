// Package results is the content-addressed, on-disk store of per-unit
// sweep results that makes re-sweeps incremental: every (scenario spec,
// mode, table size, flow count, seed, model version) tuple hashes to a
// key, and the measured scenario.RunReport for that key is cached as a
// JSON file under the store directory. A sweep whose inputs have not
// changed finds every unit already present and finishes in file-read
// time; editing one scenario's timeline, adding a seed, or bumping
// sim.ModelVersion invalidates exactly the units it affects, because the
// change lands in those units' hashes and nowhere else.
//
// The store is a cache, never a source of truth: entries that fail to
// read, parse, or match the current layout version are deleted and
// treated as misses, so a corrupted or half-written file costs one
// re-run, not a wrong number. Writes go through a temp file and an
// atomic rename, which keeps the store consistent under concurrent
// sweep workers and under cancellation mid-sweep — an entry either
// exists complete or not at all.
package results

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"supercharged/internal/scenario"
)

// layoutVersion is the on-disk envelope format version. It guards the
// store's own file format, not the simulator's semantics (that is the
// Version component of the key): entries with any other layout version
// read as misses and are removed.
const layoutVersion = 1

// Key is the content address of one unit's result: the hex SHA-256 of
// the canonical JSON of its KeyInput.
type Key string

// KeyInput is everything that determines a unit's measurements. Two
// units with equal KeyInputs produce byte-identical reports (the sweep's
// determinism contract), which is what makes caching by its hash sound.
type KeyInput struct {
	// Spec is the fully resolved scenario (topology, timeline, sweep
	// sizes): any edit to the scenario reshapes the key.
	Spec scenario.Spec `json:"spec"`
	// Mode is the router mode's name (sim.Mode.String()).
	Mode string `json:"mode"`
	// Prefixes is the table size of this unit.
	Prefixes int `json:"prefixes"`
	// Flows is the probed-flow override (0 = the lab default).
	Flows int `json:"flows"`
	// Seed is the unit's RNG seed.
	Seed int64 `json:"seed"`
	// Version names the code-relevant simulator version (normally
	// sim.ModelVersion); bumping it orphans every existing entry.
	Version string `json:"version"`
}

// KeyFor hashes the input into its content address.
func KeyFor(in KeyInput) (Key, error) {
	b, err := json.Marshal(in)
	if err != nil {
		return "", fmt.Errorf("results: marshal key input: %w", err)
	}
	sum := sha256.Sum256(b)
	return Key(hex.EncodeToString(sum[:])), nil
}

// Store is an on-disk result cache rooted at one directory. All methods
// are safe for concurrent use by sweep workers.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// entry is the on-disk envelope around a cached report.
type entry struct {
	Layout int                `json:"layout"`
	Report scenario.RunReport `json:"report"`
}

// path shards entries by the key's first byte to keep directories small
// at full-table sweep scale.
func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, string(k[:2]), string(k)+".json")
}

// Get returns the cached report for k, or ok=false on a miss. A file
// that exists but cannot be parsed (truncated write, disk corruption,
// foreign layout version) is deleted and reported as a miss: the unit
// re-runs and overwrites it, so the store self-heals.
func (s *Store) Get(k Key) (*scenario.RunReport, bool) {
	if len(k) < 3 {
		return nil, false
	}
	p := s.path(k)
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Layout != layoutVersion {
		os.Remove(p)
		return nil, false
	}
	return &e.Report, true
}

// Put stores the report under k. The write is atomic (temp file +
// rename), so concurrent writers of the same key and cancellation at any
// instant leave either the old complete entry, the new complete entry,
// or nothing — never a torn file.
func (s *Store) Put(k Key, rep scenario.RunReport) error {
	if len(k) < 3 {
		return fmt.Errorf("results: malformed key %q", k)
	}
	p := s.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	b, err := json.Marshal(entry{Layout: layoutVersion, Report: rep})
	if err != nil {
		return fmt.Errorf("results: marshal report: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "put-*.tmp")
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// Len walks the store and counts complete entries — diagnostics for
// progress output and tests, not a hot path.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n, err
}

// entryInfo is one on-disk entry's bookkeeping for stats and eviction.
type entryInfo struct {
	path  string
	bytes int64
	mtime time.Time
}

// scan walks the store collecting every entry's size and modification
// time. A modification time is a usable age proxy because entries are
// written exactly once (atomic rename) and only ever rewritten after a
// corruption self-heal.
func (s *Store) scan() ([]entryInfo, error) {
	var entries []entryInfo
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".json") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			// An entry deleted by a concurrent evict/self-heal is not an
			// inconsistency; skip it.
			return nil
		}
		entries = append(entries, entryInfo{path: path, bytes: info.Size(), mtime: info.ModTime()})
		return nil
	})
	return entries, err
}

// AgeBucket is one row of the stats age histogram.
type AgeBucket struct {
	// Label names the bucket's upper bound ("1h", "1d", ...; the last
	// bucket is "older").
	Label string `json:"label"`
	// Entries and Bytes count the entries whose age falls in the bucket.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// Stats summarizes the store's footprint: entry count, total bytes, age
// range and an age histogram — the `scenario results stats` output.
type Stats struct {
	Entries int         `json:"entries"`
	Bytes   int64       `json:"bytes"`
	Oldest  time.Time   `json:"oldest,omitempty"`
	Newest  time.Time   `json:"newest,omitempty"`
	Ages    []AgeBucket `json:"ages"`
}

// ageBounds are the histogram's bucket upper bounds.
var ageBounds = []struct {
	label string
	upTo  time.Duration
}{
	{"1h", time.Hour},
	{"1d", 24 * time.Hour},
	{"1w", 7 * 24 * time.Hour},
	{"4w", 28 * 24 * time.Hour},
}

// Stats scans the store and summarizes it relative to now.
func (s *Store) Stats(now time.Time) (Stats, error) {
	entries, err := s.scan()
	if err != nil {
		return Stats{}, fmt.Errorf("results: stats: %w", err)
	}
	st := Stats{Entries: len(entries)}
	st.Ages = make([]AgeBucket, len(ageBounds)+1)
	for i, b := range ageBounds {
		st.Ages[i].Label = b.label
	}
	st.Ages[len(ageBounds)].Label = "older"
	for _, e := range entries {
		st.Bytes += e.bytes
		if st.Oldest.IsZero() || e.mtime.Before(st.Oldest) {
			st.Oldest = e.mtime
		}
		if e.mtime.After(st.Newest) {
			st.Newest = e.mtime
		}
		idx := len(ageBounds)
		age := now.Sub(e.mtime)
		for i, b := range ageBounds {
			if age <= b.upTo {
				idx = i
				break
			}
		}
		st.Ages[idx].Entries++
		st.Ages[idx].Bytes += e.bytes
	}
	return st, nil
}

// EvictOptions bounds the store for Evict. Zero values mean "no limit on
// this axis"; an all-zero options value evicts nothing.
type EvictOptions struct {
	// MaxAge removes entries older than this (by file modification time).
	MaxAge time.Duration
	// MaxBytes removes oldest-first until the store's total size fits.
	MaxBytes int64
	// Now anchors age computation (zero = time.Now()).
	Now time.Time
	// DryRun counts what would be evicted without deleting anything.
	DryRun bool
}

// EvictResult reports what Evict did.
type EvictResult struct {
	Removed      int   `json:"removed"`
	RemovedBytes int64 `json:"removed_bytes"`
	Kept         int   `json:"kept"`
	KeptBytes    int64 `json:"kept_bytes"`
}

// Evict applies age- then size-based eviction: entries beyond MaxAge are
// removed outright, then the oldest survivors go until the store fits in
// MaxBytes. Removing a cache entry is always safe — the only cost is the
// evicted unit re-running on its next sweep — so eviction errors on
// individual files are ignored (a file already gone is a success).
func (s *Store) Evict(opts EvictOptions) (EvictResult, error) {
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	entries, err := s.scan()
	if err != nil {
		return EvictResult{}, fmt.Errorf("results: evict: %w", err)
	}
	// Oldest first: age eviction is order-independent, size eviction is
	// LRU-by-write-time.
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	var total int64
	for _, e := range entries {
		total += e.bytes
	}
	var res EvictResult
	for _, e := range entries {
		expired := opts.MaxAge > 0 && now.Sub(e.mtime) > opts.MaxAge
		oversize := opts.MaxBytes > 0 && total > opts.MaxBytes
		if !expired && !oversize {
			res.Kept++
			res.KeptBytes += e.bytes
			continue
		}
		if !opts.DryRun {
			if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
				// Leave it; it will count as kept.
				res.Kept++
				res.KeptBytes += e.bytes
				continue
			}
		}
		total -= e.bytes
		res.Removed++
		res.RemovedBytes += e.bytes
	}
	return res, nil
}
