// Package results is the content-addressed, on-disk store of per-unit
// sweep results that makes re-sweeps incremental: every (scenario spec,
// mode, table size, flow count, seed, model version) tuple hashes to a
// key, and the measured scenario.RunReport for that key is cached as a
// JSON file under the store directory. A sweep whose inputs have not
// changed finds every unit already present and finishes in file-read
// time; editing one scenario's timeline, adding a seed, or bumping
// sim.ModelVersion invalidates exactly the units it affects, because the
// change lands in those units' hashes and nowhere else.
//
// The store is a cache, never a source of truth: entries that fail to
// read, parse, or match the current layout version are deleted and
// treated as misses, so a corrupted or half-written file costs one
// re-run, not a wrong number. Writes go through a temp file and an
// atomic rename, which keeps the store consistent under concurrent
// sweep workers and under cancellation mid-sweep — an entry either
// exists complete or not at all.
package results

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"supercharged/internal/scenario"
)

// layoutVersion is the on-disk envelope format version. It guards the
// store's own file format, not the simulator's semantics (that is the
// Version component of the key): entries with any other layout version
// read as misses and are removed.
const layoutVersion = 1

// Key is the content address of one unit's result: the hex SHA-256 of
// the canonical JSON of its KeyInput.
type Key string

// KeyInput is everything that determines a unit's measurements. Two
// units with equal KeyInputs produce byte-identical reports (the sweep's
// determinism contract), which is what makes caching by its hash sound.
type KeyInput struct {
	// Spec is the fully resolved scenario (topology, timeline, sweep
	// sizes): any edit to the scenario reshapes the key.
	Spec scenario.Spec `json:"spec"`
	// Mode is the router mode's name (sim.Mode.String()).
	Mode string `json:"mode"`
	// Prefixes is the table size of this unit.
	Prefixes int `json:"prefixes"`
	// Flows is the probed-flow override (0 = the lab default).
	Flows int `json:"flows"`
	// Seed is the unit's RNG seed.
	Seed int64 `json:"seed"`
	// Version names the code-relevant simulator version (normally
	// sim.ModelVersion); bumping it orphans every existing entry.
	Version string `json:"version"`
}

// KeyFor hashes the input into its content address.
func KeyFor(in KeyInput) (Key, error) {
	b, err := json.Marshal(in)
	if err != nil {
		return "", fmt.Errorf("results: marshal key input: %w", err)
	}
	sum := sha256.Sum256(b)
	return Key(hex.EncodeToString(sum[:])), nil
}

// Store is an on-disk result cache rooted at one directory. All methods
// are safe for concurrent use by sweep workers.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("results: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// entry is the on-disk envelope around a cached report.
type entry struct {
	Layout int                `json:"layout"`
	Report scenario.RunReport `json:"report"`
}

// path shards entries by the key's first byte to keep directories small
// at full-table sweep scale.
func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, string(k[:2]), string(k)+".json")
}

// Get returns the cached report for k, or ok=false on a miss. A file
// that exists but cannot be parsed (truncated write, disk corruption,
// foreign layout version) is deleted and reported as a miss: the unit
// re-runs and overwrites it, so the store self-heals.
func (s *Store) Get(k Key) (*scenario.RunReport, bool) {
	if len(k) < 3 {
		return nil, false
	}
	p := s.path(k)
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Layout != layoutVersion {
		os.Remove(p)
		return nil, false
	}
	return &e.Report, true
}

// Put stores the report under k. The write is atomic (temp file +
// rename), so concurrent writers of the same key and cancellation at any
// instant leave either the old complete entry, the new complete entry,
// or nothing — never a torn file.
func (s *Store) Put(k Key, rep scenario.RunReport) error {
	if len(k) < 3 {
		return fmt.Errorf("results: malformed key %q", k)
	}
	p := s.path(k)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	b, err := json.Marshal(entry{Layout: layoutVersion, Report: rep})
	if err != nil {
		return fmt.Errorf("results: marshal report: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "put-*.tmp")
	if err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// Len walks the store and counts complete entries — diagnostics for
// progress output and tests, not a hot path.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n, err
}
