package results

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"supercharged/internal/scenario"
	"supercharged/internal/sim"
)

func testSpec() scenario.Spec {
	return scenario.Spec{
		Name:        "store-test",
		Description: "fixture",
		Peers:       []scenario.Peer{{Name: "R2"}, {Name: "R3"}},
		Events: []scenario.Event{
			{At: time.Second, Kind: sim.EventPeerDown, Peer: "R2"},
		},
	}
}

func testInput() KeyInput {
	return KeyInput{
		Spec:     testSpec(),
		Mode:     sim.Standalone.String(),
		Prefixes: 1000,
		Seed:     1,
		Version:  sim.ModelVersion,
	}
}

func testReport() scenario.RunReport {
	return scenario.RunReport{
		Mode:      sim.Standalone.String(),
		Prefixes:  1000,
		Peers:     []string{"R2", "R3"},
		FIBWrites: 42,
		Events: []scenario.EventReport{{
			Kind: sim.EventPeerDown, Peer: "R2", Affected: 7, Recovered: 7,
			Convergence: &scenario.ConvergenceSummary{Samples: 7, P50MS: 150, MaxMS: 180},
		}},
	}
}

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t)
	k, err := KeyFor(testInput())
	if err != nil {
		t.Fatalf("KeyFor: %v", err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on an empty store")
	}
	want := testReport()
	if err := s.Put(k, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.FIBWrites != want.FIBWrites || len(got.Events) != 1 ||
		got.Events[0].Convergence.P50MS != 150 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

// TestKeySensitivity: the key must move when anything that can change
// the measurement moves — the spec's timeline, the mode, the size, the
// seed, the flow count, the model version — and must not move otherwise.
func TestKeySensitivity(t *testing.T) {
	base, err := KeyFor(testInput())
	if err != nil {
		t.Fatalf("KeyFor: %v", err)
	}
	same, _ := KeyFor(testInput())
	if same != base {
		t.Fatal("identical inputs hashed differently")
	}
	mutations := map[string]func(*KeyInput){
		"event time":   func(in *KeyInput) { in.Spec.Events[0].At = 2 * time.Second },
		"event kind":   func(in *KeyInput) { in.Spec.Events[0].Kind = sim.EventLinkFlap; in.Spec.Events[0].Hold = time.Second },
		"peer weight":  func(in *KeyInput) { in.Spec.Peers[1].Weight = 99 },
		"mode":         func(in *KeyInput) { in.Mode = sim.Supercharged.String() },
		"prefixes":     func(in *KeyInput) { in.Prefixes = 2000 },
		"flows":        func(in *KeyInput) { in.Flows = 50 },
		"seed":         func(in *KeyInput) { in.Seed = 2 },
		"version bump": func(in *KeyInput) { in.Version = sim.ModelVersion + "-next" },
	}
	for name, mutate := range mutations {
		in := testInput()
		mutate(&in)
		k, err := KeyFor(in)
		if err != nil {
			t.Fatalf("%s: KeyFor: %v", name, err)
		}
		if k == base {
			t.Errorf("%s: key unchanged — cache would serve a stale result", name)
		}
	}
}

// TestVersionBumpInvalidates: entries stored under the old model version
// must be invisible after a bump, without touching the store.
func TestVersionBumpInvalidates(t *testing.T) {
	s := open(t)
	in := testInput()
	oldKey, _ := KeyFor(in)
	if err := s.Put(oldKey, testReport()); err != nil {
		t.Fatalf("Put: %v", err)
	}
	in.Version = "sim-v999"
	newKey, _ := KeyFor(in)
	if _, ok := s.Get(newKey); ok {
		t.Fatal("bumped version still hits the old entry")
	}
	if _, ok := s.Get(oldKey); !ok {
		t.Fatal("old entry disappeared; a rollback should still hit")
	}
}

// TestCorruptedEntryRecovers: a truncated or garbage entry reads as a
// miss and is removed, so the next Put rebuilds it.
func TestCorruptedEntryRecovers(t *testing.T) {
	s := open(t)
	k, _ := KeyFor(testInput())
	if err := s.Put(k, testReport()); err != nil {
		t.Fatalf("Put: %v", err)
	}
	p := s.path(k)
	for name, garbage := range map[string][]byte{
		"truncated":    []byte(`{"layout":1,"report":{"mo`),
		"not json":     []byte("not json at all"),
		"wrong layout": []byte(`{"layout":999,"report":{}}`),
	} {
		if err := os.WriteFile(p, garbage, 0o644); err != nil {
			t.Fatalf("%s: corrupt: %v", name, err)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("%s: corrupted entry served as a hit", name)
		}
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s: corrupted entry not removed (err=%v)", name, err)
		}
		// Self-heal: the unit re-runs and the entry works again.
		if err := s.Put(k, testReport()); err != nil {
			t.Fatalf("%s: re-Put: %v", name, err)
		}
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s: store did not recover after re-Put", name)
		}
	}
}

// TestConcurrentPutGet hammers one store from many goroutines — the
// sweep worker pool's access pattern — and is the race detector's main
// course for this package.
func TestConcurrentPutGet(t *testing.T) {
	s := open(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				in := testInput()
				in.Seed = int64(i%5 + 1) // overlapping keys across workers
				k, err := KeyFor(in)
				if err != nil {
					t.Errorf("KeyFor: %v", err)
					return
				}
				if err := s.Put(k, testReport()); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if rep, ok := s.Get(k); ok && rep.FIBWrites != 42 {
					t.Errorf("Get returned a torn report: %+v", rep)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, err := s.Len(); err != nil || n != 5 {
		t.Fatalf("Len = %d, %v; want 5 distinct entries", n, err)
	}
	// No temp droppings left behind.
	err := filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".tmp" {
			return fmt.Errorf("leftover temp file %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
