package results

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"supercharged/internal/scenario"
)

// putN stores n distinct entries and returns their keys in insertion
// order, with file mtimes staggered one minute apart (oldest first).
func putN(t *testing.T, s *Store, n int, base time.Time) []Key {
	t.Helper()
	var keys []Key
	for i := 0; i < n; i++ {
		k, err := KeyFor(KeyInput{Mode: "standalone", Prefixes: 1000 + i, Seed: 1, Version: "test"})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(k, scenario.RunReport{Prefixes: 1000 + i}); err != nil {
			t.Fatal(err)
		}
		mtime := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(s.path(k), mtime, mtime); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	return keys
}

func TestStoreStats(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	// Three entries: ~8 days, ~2 days and ~30 minutes old.
	keys := putN(t, s, 3, now.Add(-8*24*time.Hour))
	recent := now.Add(-2 * 24 * time.Hour)
	os.Chtimes(s.path(keys[1]), recent, recent)
	fresh := now.Add(-30 * time.Minute)
	os.Chtimes(s.path(keys[2]), fresh, fresh)

	st, err := s.Stats(now)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 {
		t.Fatalf("entries %d, want 3", st.Entries)
	}
	if st.Bytes <= 0 {
		t.Fatalf("bytes %d, want > 0", st.Bytes)
	}
	if !st.Oldest.Before(st.Newest) {
		t.Fatalf("oldest %v !< newest %v", st.Oldest, st.Newest)
	}
	byLabel := map[string]int{}
	total := 0
	for _, b := range st.Ages {
		byLabel[b.Label] = b.Entries
		total += b.Entries
	}
	if total != 3 {
		t.Fatalf("histogram covers %d entries, want 3", total)
	}
	if byLabel["1h"] != 1 || byLabel["1w"] != 1 || byLabel["4w"] != 1 {
		t.Fatalf("histogram wrong: %v", byLabel)
	}
}

func TestStoreEvictByAge(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	keys := putN(t, s, 4, now.Add(-10*24*time.Hour)) // all ~10 days old
	fresh := now.Add(-time.Hour)
	os.Chtimes(s.path(keys[3]), fresh, fresh)

	res, err := s.Evict(EvictOptions{MaxAge: 7 * 24 * time.Hour, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 3 || res.Kept != 1 {
		t.Fatalf("evict removed %d kept %d, want 3/1", res.Removed, res.Kept)
	}
	// The expired entries are cache misses now; the fresh one survives.
	for _, k := range keys[:3] {
		if _, ok := s.Get(k); ok {
			t.Fatalf("expired entry %s still readable", k)
		}
	}
	if _, ok := s.Get(keys[3]); !ok {
		t.Fatal("fresh entry evicted")
	}
}

func TestStoreEvictBySize(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	keys := putN(t, s, 4, now.Add(-time.Hour))
	st, err := s.Stats(now)
	if err != nil {
		t.Fatal(err)
	}
	perEntry := st.Bytes / 4
	// Budget for two entries: the two oldest must go.
	res, err := s.Evict(EvictOptions{MaxBytes: 2 * perEntry, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 || res.Kept != 2 {
		t.Fatalf("evict removed %d kept %d, want 2/2", res.Removed, res.Kept)
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("oldest entry survived a size eviction")
	}
	if _, ok := s.Get(keys[3]); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestStoreEvictDryRun(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	keys := putN(t, s, 3, now.Add(-10*24*time.Hour))
	res, err := s.Evict(EvictOptions{MaxAge: time.Hour, Now: now, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 3 {
		t.Fatalf("dry run would remove %d, want 3", res.Removed)
	}
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			t.Fatal("dry run actually removed an entry")
		}
	}
}

func TestStoreEvictNoLimitsNoOp(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	putN(t, s, 2, time.Now().Add(-time.Hour))
	res, err := s.Evict(EvictOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 0 || res.Kept != 2 {
		t.Fatalf("zero-option evict removed %d kept %d, want 0/2", res.Removed, res.Kept)
	}
}
