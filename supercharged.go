// Package supercharged reproduces "Supercharge me: Boost Router
// Convergence with SDN" (Chang, Holterbach, Happe, Vanbever — SIGCOMM
// 2015): an SDN controller that gives a legacy IP router a hierarchical
// FIB spanning two devices, cutting convergence after a peer failure from
// minutes (one FIB entry at a time) to a constant ~150 ms (one switch rule
// per backup-group).
//
// The package re-exports the library's stable surface; the implementation
// lives under internal/:
//
//   - internal/core — the supercharger: backup-group computation (paper
//     Listing 1), VNH/VMAC allocation, the convergence engine (Listing 2)
//     and the ARP responder;
//   - internal/bgp, internal/bfd, internal/openflow — from-scratch
//     protocol substrates (RFC 4271, RFC 5880, OpenFlow 1.0);
//   - internal/router, internal/dataplane, internal/netem — the legacy
//     router model with its flat, entry-by-entry FIB, the switch flow
//     table and the emulated links;
//   - internal/sim, internal/lab — the discrete-event convergence lab and
//     the harness regenerating every figure/table of the paper's §4;
//   - internal/scenario — the declarative failure-scenario engine: named
//     event timelines (peer failures, flaps, partial withdraws, rule loss,
//     controller restarts, shared-risk link groups, session resets with
//     RFC 4724 graceful restart, background UPDATE noise) compiled into
//     lab runs with per-event metrics, plus the scenario fuzzer that
//     hunts for standalone-vs-supercharged convergence regressions with
//     a seeded grammar and a shrinking minimizer;
//   - internal/sweep — the parallel sweep executor: scenario × mode ×
//     size × seed cross products run across a bounded worker pool with
//     streamed per-run results, aggregated into multi-seed distributions
//     (median + spread per cell, with per-event speedup ratios) that
//     cmd/experiments renders as the committed EXPERIMENTS.md;
//   - internal/results — the content-addressed on-disk store of per-unit
//     sweep results that makes re-sweeps incremental: unchanged units are
//     served from disk, invalidation is by hash of (scenario spec, mode,
//     size, seed, sim.ModelVersion);
//   - internal/feed, internal/trafficgen — synthetic full-table feeds and
//     the FPGA-style probe source/sink;
//   - internal/mrt — streaming reader/writer for RFC 6396 MRT dumps
//     (TABLE_DUMP_V2 + BGP4MP), the bridge that replays real collector
//     RIBs through every scenario (feed.FromMRT, `scenario run --table`).
//
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package supercharged

import (
	"context"
	"io"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/core"
	"supercharged/internal/feed"
	"supercharged/internal/lab"
	"supercharged/internal/microbench"
	"supercharged/internal/mrt"
	"supercharged/internal/results"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
	"supercharged/internal/sweep"
	"supercharged/internal/telemetry"
)

// Re-exported core types.
type (
	// Group is one backup-group: (primary, backup, …) next-hops sharing a
	// virtual next-hop and virtual MAC.
	Group = core.Group
	// Processor implements the online backup-group algorithm (Listing 1).
	Processor = core.Processor
	// Engine implements data-plane convergence (Listing 2).
	Engine = core.Engine
	// GroupTable holds the backup-groups and their VNH/VMAC assignments.
	GroupTable = core.GroupTable
	// VNHPool allocates virtual next-hops and MACs.
	VNHPool = core.VNHPool
	// AllocMode selects sequential (paper-faithful) or deterministic
	// (replica-safe) VNH allocation.
	AllocMode = core.AllocMode
	// PeerPort locates a next-hop in the data plane.
	PeerPort = core.PeerPort
	// ARPResponder answers ARP for virtual next-hops.
	ARPResponder = core.ARPResponder
)

// Allocation modes.
const (
	AllocSequential    = core.AllocSequential
	AllocDeterministic = core.AllocDeterministic
)

// NewProcessor builds a Listing-1 processor; nil arguments create fresh
// state.
func NewProcessor(groups *GroupTable) *Processor { return core.NewProcessor(nil, groups) }

// RecycleUpdates hands a batch emitted by Processor.Process/PeerDown back
// to the update pool once the caller is done with it. Optional; never
// recycle updates from any other source.
func RecycleUpdates(upds []*bgp.Update) { core.RecycleUpdates(upds) }

// NewRIB builds an empty BGP RIB (merged Adj-RIB-In with the full
// decision process, a per-peer prefix index and interned attributes).
func NewRIB() *bgp.RIB { return bgp.NewRIB() }

// NewRIBSized builds a RIB pre-sized for about n prefixes — at
// full-table scale this skips hundreds of megabytes of map-growth
// re-zeroing.
func NewRIBSized(n int) *bgp.RIB { return bgp.NewRIBSized(n) }

// NewAttrsInterner builds a canonical-pointer pool for BGP path
// attributes: semantically equal attribute sets intern to one pointer,
// making downstream equality checks pointer compares.
func NewAttrsInterner() *bgp.Interner { return bgp.NewInterner() }

// NewGroupTable builds a backup-group table over pool (nil = sequential).
func NewGroupTable(pool *VNHPool) *GroupTable { return core.NewGroupTable(pool) }

// NewVNHPool builds a VNH/VMAC pool.
func NewVNHPool(mode AllocMode) *VNHPool { return core.NewVNHPool(mode) }

// NewEngine builds a Listing-2 convergence engine.
func NewEngine(groups *GroupTable, pusher core.FlowPusher) *Engine {
	return core.NewEngine(groups, pusher)
}

// Simulation re-exports: the Fig. 4 lab on a virtual clock.
type (
	// SimConfig parameterizes one convergence experiment.
	SimConfig = sim.Config
	// SimResult carries the per-flow convergence measurements.
	SimResult = sim.Result
)

// Simulation modes.
const (
	Standalone   = sim.Standalone
	Supercharged = sim.Supercharged
)

// RunSim executes one convergence experiment (see internal/sim).
func RunSim(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// DefaultSimConfig returns the calibrated lab configuration.
func DefaultSimConfig(mode sim.Mode, prefixes int) SimConfig {
	return sim.DefaultConfig(mode, prefixes)
}

// Scenario engine re-exports: declarative failure scenarios over the lab
// (see internal/scenario).
type (
	// Scenario is one declarative failure scenario: a parameterized peer
	// topology plus a scripted event timeline.
	Scenario = scenario.Spec
	// ScenarioPeer declares one provider of a scenario topology.
	ScenarioPeer = scenario.Peer
	// ScenarioEvent is one scripted event (peer-down, link-flap, ...).
	ScenarioEvent = scenario.Event
	// ScenarioOptions parameterizes one scenario execution.
	ScenarioOptions = scenario.Options
	// ScenarioReport carries the per-event convergence measurements of a
	// scenario execution, renderable as JSON, CSV or a text table.
	ScenarioReport = scenario.Report
)

// Scenario event kinds and detection paths. The first block is the
// first-generation single-peer events; the second block is the
// second-generation model (DESIGN.md §7): correlated multi-peer
// failures, BGP session resets with RFC 4724 graceful restart, and
// background UPDATE noise.
const (
	// EventPeerDown cuts a provider's link for good.
	EventPeerDown = sim.EventPeerDown
	// EventPeerUp restores a cut link; the session re-establishes and the
	// peer replays its feed.
	EventPeerUp = sim.EventPeerUp
	// EventLinkFlap cuts a link and restores it Hold later; flaps shorter
	// than the detection time are absorbed.
	EventLinkFlap = sim.EventLinkFlap
	// EventPartialWithdraw withdraws the head Fraction of the peer's feed
	// with the link up.
	EventPartialWithdraw = sim.EventPartialWithdraw
	// EventBurstReannounce replays the peer's withdrawn chunk (or full
	// feed) in one burst.
	EventBurstReannounce = sim.EventBurstReannounce
	// EventRuleLoss wipes the switch flow table; the controller resyncs it.
	EventRuleLoss = sim.EventRuleLoss
	// EventControllerRestart takes the controller down for Hold.
	EventControllerRestart = sim.EventControllerRestart

	// EventSRLGDown cuts every link of a shared-risk group (Event.Peers)
	// in one event — a conduit cut taking several providers down at once.
	EventSRLGDown = sim.EventSRLGDown
	// EventSessionReset bounces the peer's BGP session with the link up;
	// Event.Graceful selects RFC 4724 graceful restart (forwarding state
	// preserved) versus a hard restart (blackout until the session
	// re-establishes and replays).
	EventSessionReset = sim.EventSessionReset
	// EventUpdateNoise re-announces feed chunks at Event.Rate updates/s
	// for Event.Hold — background control-plane load during failover.
	EventUpdateNoise = sim.EventUpdateNoise

	// DetectBFD notices failures in BFDMult × BFDInterval (90 ms).
	DetectBFD = sim.DetectBFD
	// DetectHoldTimer waits for the BGP hold timer (90 s default).
	DetectHoldTimer = sim.DetectHoldTimer
)

// Scenarios returns the registered scenarios sorted by name.
func Scenarios() []Scenario { return scenario.List() }

// LookupScenario returns a registered scenario by name.
func LookupScenario(name string) (Scenario, bool) { return scenario.Lookup(name) }

// RegisterScenario validates and registers a user-defined scenario.
func RegisterScenario(s Scenario) error { return scenario.Register(s) }

// RunScenario executes a scenario and returns its report. The context
// cancels the underlying simulations between events.
func RunScenario(ctx context.Context, s Scenario, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.Run(ctx, s, opts)
}

// RunScenarioNamed executes a registered scenario by name.
func RunScenarioNamed(ctx context.Context, name string, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.RunNamed(ctx, name, opts)
}

// Fuzzer re-exports: randomized regression hunting over the scenario
// engine (see internal/scenario and docs/fuzzing.md).
type (
	// FuzzOptions parameterizes a fuzzing session: grammar seed and
	// bounds, per-run table size, and the allowed supercharged-vs-
	// standalone convergence slack.
	FuzzOptions = scenario.FuzzOptions
	// FuzzResult is one fuzzing session's outcome; its findings carry
	// the offending specs and their shrunk 1-minimal reproductions.
	FuzzResult = scenario.FuzzResult
	// FuzzFinding is one flagged spec with the oracle's verdict.
	FuzzFinding = scenario.FuzzFinding
)

// FuzzScenarios generates random valid timelines from the seeded
// grammar, checks each for a standalone-vs-supercharged convergence
// regression, and shrinks every finding. The whole session is a pure
// function of FuzzOptions.Seed. progress (optional) receives one
// reproducible line per checked spec.
func FuzzScenarios(ctx context.Context, opts FuzzOptions, progress io.Writer) (*FuzzResult, error) {
	return scenario.Fuzz(ctx, opts, progress)
}

// GenerateFuzzSpec re-derives the index-th generated spec of a fuzzing
// session — the reproduction contract behind every finding.
func GenerateFuzzSpec(seed int64, index int, opts FuzzOptions) Scenario {
	return scenario.GenerateSpec(seed, index, opts)
}

// CheckScenario runs one spec through the fuzzing oracle: both modes,
// compared. A non-empty reason describes the supercharged regression;
// an empty reason means the spec passes.
func CheckScenario(ctx context.Context, s Scenario, opts FuzzOptions) (string, error) {
	return scenario.CheckSpec(ctx, s, opts)
}

// ShrinkScenario greedily minimizes a failing spec to a 1-minimal
// reproduction (removing any single event makes the oracle pass).
func ShrinkScenario(ctx context.Context, s Scenario, opts FuzzOptions) (Scenario, string, error) {
	return scenario.ShrinkSpec(ctx, s, opts)
}

// Sweep re-exports: the parallel sweep executor (see internal/sweep).
type (
	// SweepSpec declares a sweep: scenarios × modes × table sizes × seeds.
	// The zero SweepSpec covers every registered scenario in both modes.
	SweepSpec = sweep.Spec
	// SweepUnit is one independent run of a sweep.
	SweepUnit = sweep.Unit
	// SweepUnitResult is one completed unit, streamed as workers finish.
	SweepUnitResult = sweep.UnitResult
	// SweepOptions bounds the worker pool, wires progress output, caps
	// the wall-clock budget, and attaches the result store for
	// incremental re-sweeps.
	SweepOptions = sweep.Options
	// SweepAggregate is the deterministic cross-scenario comparison report,
	// renderable as JSON, a text table, or EXPERIMENTS.md markdown. With
	// several seeds every cell is a distribution (median/min/mean/p90/max
	// and IQR across seeds) rather than a point.
	SweepAggregate = sweep.Aggregate
	// ResultStore is the content-addressed on-disk cache of per-unit sweep
	// results; attach one to SweepOptions.Store and unchanged units are
	// served from disk instead of re-run.
	ResultStore = results.Store
)

// OpenResultStore opens (creating if needed) a result store rooted at
// dir.
func OpenResultStore(dir string) (*ResultStore, error) { return results.Open(dir) }

// ExpandSweep resolves a sweep spec into its run units in deterministic
// order.
func ExpandSweep(spec SweepSpec) ([]SweepUnit, error) { return sweep.Expand(spec) }

// StreamSweep executes units across a bounded worker pool, delivering
// each result as it completes; the channel closes when all are done.
// Cancelling the context stops in-flight simulations between events.
func StreamSweep(ctx context.Context, units []SweepUnit, opts SweepOptions) <-chan SweepUnitResult {
	return sweep.Stream(ctx, units, opts)
}

// RunSweep expands, executes and aggregates a sweep. Unit failures are
// reported in the aggregate rather than aborting the sweep; a cancelled
// or over-budget sweep returns the partial aggregate alongside the
// context error.
func RunSweep(ctx context.Context, spec SweepSpec, opts SweepOptions) (*SweepAggregate, error) {
	return sweep.Run(ctx, spec, opts)
}

// TierSizes resolves a named table-size tier (s, m, l, xl — xl is the
// 100k/1M full-Internet scale) to its prefix counts.
func TierSizes(name string) ([]int, bool) { return scenario.TierSizes(name) }

// Telemetry re-exports: the observability layer (DESIGN.md §9,
// docs/observability.md). Everything is opt-in and nil-is-off:
// instrumented and bare runs produce byte-identical reports.
type (
	// MetricsRegistry holds counters, gauges and histograms and renders
	// the Prometheus text exposition; a nil registry disables every hook.
	MetricsRegistry = telemetry.Registry
	// ConvergenceTrace records the convergence pipeline as structured
	// spans in virtual time, exportable as JSONL or Chrome trace-event
	// JSON (Perfetto-openable).
	ConvergenceTrace = telemetry.Trace
	// TraceSpan is one recorded pipeline interval or instant.
	TraceSpan = telemetry.Span
	// Instrumentation bundles the attachments a scenario run carries.
	Instrumentation = scenario.Instrumentation
	// TelemetryServer is the opt-in HTTP endpoint serving /metrics,
	// /runs and /debug/pprof.
	TelemetryServer = telemetry.Server
	// RunTracker follows sweep units through their lifecycle for the
	// live /runs page; attach via SweepOptions.Runs.
	RunTracker = telemetry.RunTracker
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewConvergenceTrace builds an empty trace recorder.
func NewConvergenceTrace() *ConvergenceTrace { return telemetry.NewTrace() }

// ServeTelemetry starts the observability endpoint on addr (":0" picks
// an ephemeral port; the bound address is in the returned server's
// Addr). reg and runs may each be nil.
func ServeTelemetry(addr string, reg *MetricsRegistry, runs *RunTracker) (*TelemetryServer, error) {
	return telemetry.Serve(addr, reg, runs)
}

// RunScenarioInstrumented executes one (mode, size) scenario run with a
// trace recorder and/or metrics registry attached.
func RunScenarioInstrumented(ctx context.Context, s Scenario, mode sim.Mode, prefixes, flows int, seed int64, ins Instrumentation) (scenario.RunReport, error) {
	return scenario.RunOneInstrumented(ctx, s, mode, prefixes, flows, seed, ins)
}

// Micro-benchmark re-exports: the hot-path suite behind `cmd/bench
// micro` and the committed BENCH_micro.json baseline.
type (
	// MicroSnapshot is one suite run's measurements.
	MicroSnapshot = microbench.Snapshot
	// MicroOptions filters and wires progress for a suite run.
	MicroOptions = microbench.Options
)

// RunMicroBench executes the hot-path micro-benchmark suite (RIB update
// churn, indexed vs full-scan RemovePeer at the 1M shape, the
// processor's zero-alloc churn filter, group allocation).
func RunMicroBench(opts MicroOptions) (*MicroSnapshot, error) { return microbench.Run(opts) }

// CompareMicroBench gates a suite run against a baseline snapshot; see
// microbench.Compare for the tolerance and grace-floor semantics.
func CompareMicroBench(baseline, current *MicroSnapshot, tol float64) []string {
	return microbench.Compare(baseline, current, tol)
}

// Experiment harness re-exports.

// RunFig5 regenerates Fig. 5 (convergence vs prefix count, both modes).
func RunFig5(cfg lab.Fig5Config, progress io.Writer) (*lab.Fig5Result, error) {
	return lab.RunFig5(cfg, progress)
}

// RunMicro regenerates the §4 controller micro-benchmark (E3).
func RunMicro(cfg lab.MicroConfig) (*lab.MicroResult, error) { return lab.RunMicro(cfg) }

// RunGroups regenerates the backup-group scaling check (E4, n(n-1)).
func RunGroups(cfg lab.GroupsConfig) ([]lab.GroupsRow, error) { return lab.RunGroups(cfg) }

// FirstEntry measures the standalone best case (E2, paper: 375 ms).
func FirstEntry(prefixes, runs int, seed int64) (time.Duration, error) {
	return lab.FirstEntry(prefixes, runs, seed)
}

// Feed re-exports: routing tables the lab announces, from the synthetic
// generator or a real MRT dump (docs/feeds.md, DESIGN.md §10).
type (
	// FeedTable is a routing table: routes over a shared, interned
	// attribute-template pool. Both backends produce one.
	FeedTable = feed.Table
	// FeedConfig parameterizes the synthetic generator.
	FeedConfig = feed.Config
	// FeedDump is a loaded MRT dump: the merged table plus per-peer views.
	FeedDump = feed.Dump
	// MRTReader streams records from an RFC 6396 dump (gzip'd or plain).
	MRTReader = mrt.Reader
	// MRTWriter renders records as an RFC 6396 dump.
	MRTWriter = mrt.Writer
	// MRTRecord is one decoded MRT record.
	MRTRecord = mrt.Record
)

// GenerateFeed builds the synthetic table: N prefixes over a template
// pool, deterministic per (N, Seed).
func GenerateFeed(cfg FeedConfig) *FeedTable { return feed.Generate(cfg) }

// LoadMRT reads a TABLE_DUMP_V2 dump (gzip detected transparently) into
// a merged table plus per-peer views sharing one interned template pool.
func LoadMRT(r io.Reader) (*FeedDump, error) { return feed.FromMRT(r) }

// NewMRTReader wraps r for record-at-a-time decoding; NewMRTWriter is
// its inverse.
func NewMRTReader(r io.Reader) *MRTReader { return mrt.NewReader(r) }

// NewMRTWriter returns a writer rendering records to w.
func NewMRTWriter(w io.Writer) *MRTWriter { return mrt.NewWriter(w) }
