// Package supercharged reproduces "Supercharge me: Boost Router
// Convergence with SDN" (Chang, Holterbach, Happe, Vanbever — SIGCOMM
// 2015): an SDN controller that gives a legacy IP router a hierarchical
// FIB spanning two devices, cutting convergence after a peer failure from
// minutes (one FIB entry at a time) to a constant ~150 ms (one switch rule
// per backup-group).
//
// The package re-exports the library's stable surface; the implementation
// lives under internal/:
//
//   - internal/core — the supercharger: backup-group computation (paper
//     Listing 1), VNH/VMAC allocation, the convergence engine (Listing 2)
//     and the ARP responder;
//   - internal/bgp, internal/bfd, internal/openflow — from-scratch
//     protocol substrates (RFC 4271, RFC 5880, OpenFlow 1.0);
//   - internal/router, internal/dataplane, internal/netem — the legacy
//     router model with its flat, entry-by-entry FIB, the switch flow
//     table and the emulated links;
//   - internal/sim, internal/lab — the discrete-event convergence lab and
//     the harness regenerating every figure/table of the paper's §4;
//   - internal/scenario — the declarative failure-scenario engine: named
//     event timelines (peer failures, flaps, partial withdraws, rule loss,
//     controller restarts) compiled into lab runs with per-event metrics;
//   - internal/sweep — the parallel sweep executor: scenario × mode ×
//     size × seed cross products run across a bounded worker pool with
//     streamed per-run results, aggregated into multi-seed distributions
//     (median + spread per cell, with per-event speedup ratios) that
//     cmd/experiments renders as the committed EXPERIMENTS.md;
//   - internal/results — the content-addressed on-disk store of per-unit
//     sweep results that makes re-sweeps incremental: unchanged units are
//     served from disk, invalidation is by hash of (scenario spec, mode,
//     size, seed, sim.ModelVersion);
//   - internal/feed, internal/trafficgen — synthetic full-table feeds and
//     the FPGA-style probe source/sink.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package supercharged

import (
	"context"
	"io"
	"time"

	"supercharged/internal/core"
	"supercharged/internal/lab"
	"supercharged/internal/results"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
	"supercharged/internal/sweep"
)

// Re-exported core types.
type (
	// Group is one backup-group: (primary, backup, …) next-hops sharing a
	// virtual next-hop and virtual MAC.
	Group = core.Group
	// Processor implements the online backup-group algorithm (Listing 1).
	Processor = core.Processor
	// Engine implements data-plane convergence (Listing 2).
	Engine = core.Engine
	// GroupTable holds the backup-groups and their VNH/VMAC assignments.
	GroupTable = core.GroupTable
	// VNHPool allocates virtual next-hops and MACs.
	VNHPool = core.VNHPool
	// AllocMode selects sequential (paper-faithful) or deterministic
	// (replica-safe) VNH allocation.
	AllocMode = core.AllocMode
	// PeerPort locates a next-hop in the data plane.
	PeerPort = core.PeerPort
	// ARPResponder answers ARP for virtual next-hops.
	ARPResponder = core.ARPResponder
)

// Allocation modes.
const (
	AllocSequential    = core.AllocSequential
	AllocDeterministic = core.AllocDeterministic
)

// NewProcessor builds a Listing-1 processor; nil arguments create fresh
// state.
func NewProcessor(groups *GroupTable) *Processor { return core.NewProcessor(nil, groups) }

// NewGroupTable builds a backup-group table over pool (nil = sequential).
func NewGroupTable(pool *VNHPool) *GroupTable { return core.NewGroupTable(pool) }

// NewVNHPool builds a VNH/VMAC pool.
func NewVNHPool(mode AllocMode) *VNHPool { return core.NewVNHPool(mode) }

// NewEngine builds a Listing-2 convergence engine.
func NewEngine(groups *GroupTable, pusher core.FlowPusher) *Engine {
	return core.NewEngine(groups, pusher)
}

// Simulation re-exports: the Fig. 4 lab on a virtual clock.
type (
	// SimConfig parameterizes one convergence experiment.
	SimConfig = sim.Config
	// SimResult carries the per-flow convergence measurements.
	SimResult = sim.Result
)

// Simulation modes.
const (
	Standalone   = sim.Standalone
	Supercharged = sim.Supercharged
)

// RunSim executes one convergence experiment (see internal/sim).
func RunSim(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// DefaultSimConfig returns the calibrated lab configuration.
func DefaultSimConfig(mode sim.Mode, prefixes int) SimConfig {
	return sim.DefaultConfig(mode, prefixes)
}

// Scenario engine re-exports: declarative failure scenarios over the lab
// (see internal/scenario).
type (
	// Scenario is one declarative failure scenario: a parameterized peer
	// topology plus a scripted event timeline.
	Scenario = scenario.Spec
	// ScenarioPeer declares one provider of a scenario topology.
	ScenarioPeer = scenario.Peer
	// ScenarioEvent is one scripted event (peer-down, link-flap, ...).
	ScenarioEvent = scenario.Event
	// ScenarioOptions parameterizes one scenario execution.
	ScenarioOptions = scenario.Options
	// ScenarioReport carries the per-event convergence measurements of a
	// scenario execution, renderable as JSON, CSV or a text table.
	ScenarioReport = scenario.Report
)

// Scenario event kinds and detection paths.
const (
	EventPeerDown          = sim.EventPeerDown
	EventPeerUp            = sim.EventPeerUp
	EventLinkFlap          = sim.EventLinkFlap
	EventPartialWithdraw   = sim.EventPartialWithdraw
	EventBurstReannounce   = sim.EventBurstReannounce
	EventRuleLoss          = sim.EventRuleLoss
	EventControllerRestart = sim.EventControllerRestart

	DetectBFD       = sim.DetectBFD
	DetectHoldTimer = sim.DetectHoldTimer
)

// Scenarios returns the registered scenarios sorted by name.
func Scenarios() []Scenario { return scenario.List() }

// LookupScenario returns a registered scenario by name.
func LookupScenario(name string) (Scenario, bool) { return scenario.Lookup(name) }

// RegisterScenario validates and registers a user-defined scenario.
func RegisterScenario(s Scenario) error { return scenario.Register(s) }

// RunScenario executes a scenario and returns its report. The context
// cancels the underlying simulations between events.
func RunScenario(ctx context.Context, s Scenario, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.Run(ctx, s, opts)
}

// RunScenarioNamed executes a registered scenario by name.
func RunScenarioNamed(ctx context.Context, name string, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.RunNamed(ctx, name, opts)
}

// Sweep re-exports: the parallel sweep executor (see internal/sweep).
type (
	// SweepSpec declares a sweep: scenarios × modes × table sizes × seeds.
	// The zero SweepSpec covers every registered scenario in both modes.
	SweepSpec = sweep.Spec
	// SweepUnit is one independent run of a sweep.
	SweepUnit = sweep.Unit
	// SweepUnitResult is one completed unit, streamed as workers finish.
	SweepUnitResult = sweep.UnitResult
	// SweepOptions bounds the worker pool, wires progress output, caps
	// the wall-clock budget, and attaches the result store for
	// incremental re-sweeps.
	SweepOptions = sweep.Options
	// SweepAggregate is the deterministic cross-scenario comparison report,
	// renderable as JSON, a text table, or EXPERIMENTS.md markdown. With
	// several seeds every cell is a distribution (median/min/mean/p90/max
	// and IQR across seeds) rather than a point.
	SweepAggregate = sweep.Aggregate
	// ResultStore is the content-addressed on-disk cache of per-unit sweep
	// results; attach one to SweepOptions.Store and unchanged units are
	// served from disk instead of re-run.
	ResultStore = results.Store
)

// OpenResultStore opens (creating if needed) a result store rooted at
// dir.
func OpenResultStore(dir string) (*ResultStore, error) { return results.Open(dir) }

// ExpandSweep resolves a sweep spec into its run units in deterministic
// order.
func ExpandSweep(spec SweepSpec) ([]SweepUnit, error) { return sweep.Expand(spec) }

// StreamSweep executes units across a bounded worker pool, delivering
// each result as it completes; the channel closes when all are done.
// Cancelling the context stops in-flight simulations between events.
func StreamSweep(ctx context.Context, units []SweepUnit, opts SweepOptions) <-chan SweepUnitResult {
	return sweep.Stream(ctx, units, opts)
}

// RunSweep expands, executes and aggregates a sweep. Unit failures are
// reported in the aggregate rather than aborting the sweep; a cancelled
// or over-budget sweep returns the partial aggregate alongside the
// context error.
func RunSweep(ctx context.Context, spec SweepSpec, opts SweepOptions) (*SweepAggregate, error) {
	return sweep.Run(ctx, spec, opts)
}

// Experiment harness re-exports.

// RunFig5 regenerates Fig. 5 (convergence vs prefix count, both modes).
func RunFig5(cfg lab.Fig5Config, progress io.Writer) (*lab.Fig5Result, error) {
	return lab.RunFig5(cfg, progress)
}

// RunMicro regenerates the §4 controller micro-benchmark (E3).
func RunMicro(cfg lab.MicroConfig) (*lab.MicroResult, error) { return lab.RunMicro(cfg) }

// RunGroups regenerates the backup-group scaling check (E4, n(n-1)).
func RunGroups(cfg lab.GroupsConfig) ([]lab.GroupsRow, error) { return lab.RunGroups(cfg) }

// FirstEntry measures the standalone best case (E2, paper: 375 ms).
func FirstEntry(prefixes, runs int, seed int64) (time.Duration, error) {
	return lab.FirstEntry(prefixes, runs, seed)
}
