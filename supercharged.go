// Package supercharged reproduces "Supercharge me: Boost Router
// Convergence with SDN" (Chang, Holterbach, Happe, Vanbever — SIGCOMM
// 2015): an SDN controller that gives a legacy IP router a hierarchical
// FIB spanning two devices, cutting convergence after a peer failure from
// minutes (one FIB entry at a time) to a constant ~150 ms (one switch rule
// per backup-group).
//
// The package re-exports the library's stable surface in seven sections
// — simulation, scenarios, sweeps, telemetry, feeds/MRT, the service
// runtime, and robustness — while the implementation lives under
// internal/:
//
//   - internal/core — the supercharger: backup-group computation (paper
//     Listing 1), VNH/VMAC allocation, the convergence engine (Listing 2)
//     and the ARP responder;
//   - internal/bgp, internal/bfd, internal/openflow — from-scratch
//     protocol substrates (RFC 4271, RFC 5880, OpenFlow 1.0);
//   - internal/router, internal/dataplane, internal/netem — the legacy
//     router model with its flat, entry-by-entry FIB, the switch flow
//     table and the emulated links;
//   - internal/clock — the pluggable time source: one discrete-event
//     engine driven either virtually (instant, deterministic — the lab
//     default) or against the wall clock, plus the free-threaded source
//     the long-running daemon drains;
//   - internal/sim, internal/lab — the discrete-event convergence lab and
//     the harness regenerating every figure/table of the paper's §4;
//   - internal/scenario — the declarative failure-scenario engine: named
//     event timelines compiled into lab runs with per-event metrics, plus
//     the scenario fuzzer with a seeded grammar and shrinking minimizer;
//   - internal/sweep — the parallel sweep executor: scenario × mode ×
//     size × seed cross products run across a bounded worker pool;
//   - internal/results — the content-addressed on-disk store of per-unit
//     sweep results that makes re-sweeps incremental;
//   - internal/daemon — the concurrent controller service behind
//     `supercharged serve`: per-peer ingestion into a sharded RIB, a
//     batching pipeline to downstream routers with resilient delivery
//     (retries, circuit breakers, gap-healing resync), live telemetry;
//   - internal/chaos — the seeded fault-injection layer and soak runner
//     behind `supercharged chaoscheck`, asserting the delivery path's
//     resilience invariants under deterministic fault storms;
//   - internal/feed, internal/trafficgen — synthetic full-table feeds and
//     the FPGA-style probe source/sink;
//   - internal/mrt — streaming reader/writer for RFC 6396 MRT dumps.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package supercharged

import (
	"context"
	"io"

	"supercharged/internal/chaos"
	"supercharged/internal/clock"
	"supercharged/internal/daemon"
	"supercharged/internal/feed"
	"supercharged/internal/mrt"
	"supercharged/internal/results"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
	"supercharged/internal/sweep"
	"supercharged/internal/telemetry"
)

// --- Simulation: the Fig. 4 convergence lab ----------------------------

type (
	// SimConfig parameterizes one convergence experiment.
	SimConfig = sim.Config
	// SimResult carries the per-flow convergence measurements.
	SimResult = sim.Result
)

// Simulation modes.
const (
	Standalone   = sim.Standalone
	Supercharged = sim.Supercharged
)

// RunSim executes one convergence experiment (see internal/sim). The
// context cancels the run between simulator events.
func RunSim(ctx context.Context, cfg SimConfig) (*SimResult, error) { return sim.Run(ctx, cfg) }

// DefaultSimConfig returns the calibrated lab configuration.
func DefaultSimConfig(mode sim.Mode, prefixes int) SimConfig {
	return sim.DefaultConfig(mode, prefixes)
}

// --- Service runtime: pluggable time sources ---------------------------

// TimeSource is the engine every run drains: schedule callbacks, then
// Drive them to quiescence. SimConfig.Source accepts one; nil keeps the
// deterministic virtual default.
type TimeSource = clock.Source

// NewVirtualTimeSource builds the lab default: a discrete-event virtual
// clock starting at the Unix epoch that jumps instantly between
// deadlines. Same config, same source, same bytes out.
func NewVirtualTimeSource() TimeSource { return clock.NewVirtualAtZero() }

// NewWallTimeSource builds a real-time source with the virtual engine's
// execution model (serial callbacks, same ordering contract), paced
// against the system clock: the same experiment in real time.
func NewWallTimeSource() TimeSource { return clock.NewWall() }

type (
	// Daemon is the long-running concurrent controller service behind
	// `supercharged serve`: per-peer ingestion into a sharded RIB,
	// batched fan-out to downstream routers, graceful drain.
	Daemon = daemon.Daemon
	// DaemonConfig assembles a Daemon.
	DaemonConfig = daemon.Config
	// DaemonSource is one upstream BGP feed the daemon ingests.
	DaemonSource = daemon.PeerSource
	// DaemonSink is one downstream router the daemon programs.
	DaemonSink = daemon.RouterSink
	// DaemonTableReplay replays a feed table (synthetic or MRT-sourced)
	// as one peer's session — the daemon's load generator.
	DaemonTableReplay = daemon.TableReplay
	// RouteBatch is one batched set of best-path changes shipped to a
	// router sink.
	RouteBatch = daemon.Batch
	// RouteChange is one prefix's post-decision outcome inside a batch.
	RouteChange = daemon.RouteChange
)

// NewDaemon builds the controller daemon; Start/Wait/Drain run it.
func NewDaemon(cfg DaemonConfig) *Daemon { return daemon.New(cfg) }

// NewFIBSink builds an in-memory router sink that programs batches into
// a map FIB — the downstream router stand-in for tests and soak runs.
func NewFIBSink(name string) *daemon.FIBSink { return daemon.NewFIBSink(name) }

// --- Robustness: resilient delivery + seeded chaos ---------------------

type (
	// DeliveryPolicy turns on the daemon's resilient push path: per-push
	// timeouts, bounded-jitter retries, a per-sink circuit breaker with
	// degraded buffering, and gap-driven snapshot resync. The zero value
	// keeps the legacy direct-apply path.
	DeliveryPolicy = daemon.DeliveryPolicy
	// ReconnectPolicy governs session re-establishment after a feed
	// fails: bounded attempts with jittered exponential backoff.
	ReconnectPolicy = daemon.ReconnectPolicy
	// SinkState is a stateful sink's delivery accounting: last applied
	// sequence, missing ranges, gap/heal/stale counts.
	SinkState = daemon.SinkState
	// SeqRange is one inclusive range of lost batch sequence numbers.
	SeqRange = daemon.SeqRange
	// GapError reports a detected sequence gap (applied AND reported).
	GapError = daemon.GapError
	// StatefulSink is a RouterSink whose delivery state can be read
	// back, enabling verified resync.
	StatefulSink = daemon.StatefulSink
	// FIBEntry is one programmed prefix->next-hop pair.
	FIBEntry = daemon.FIBEntry
	// ChaosConfig is one seeded fault mix (drops, stalls, transients,
	// jitter, session crashes, corrupt records) with a per-entity budget.
	ChaosConfig = chaos.Config
	// ChaosPlan is a compiled fault schedule; wrap sources and sinks
	// with its Source/Sink methods.
	ChaosPlan = chaos.Plan
	// ChaosSoakConfig assembles one chaos soak run.
	ChaosSoakConfig = chaos.SoakConfig
	// ChaosSoakReport is a soak's outcome, including every resilience
	// invariant violation found (none = passed).
	ChaosSoakReport = chaos.SoakReport
)

// DefaultDeliveryPolicy returns the production resilient-delivery knobs.
func DefaultDeliveryPolicy() DeliveryPolicy { return daemon.DefaultDeliveryPolicy() }

// DefaultReconnectPolicy returns the production reconnect knobs.
func DefaultReconnectPolicy() ReconnectPolicy { return daemon.DefaultReconnectPolicy() }

// ChaosMix returns a named fault preset: "drop", "stall", "crash",
// "corrupt", "jitter" or "all".
func ChaosMix(name string) (ChaosConfig, error) { return chaos.Mix(name) }

// NewChaosPlan compiles a fault mix under the system clock. For
// tick-reproducible latency faults build the plan directly against a
// virtual clock via internal-facing tests, or run a soak with
// ChaosSoakConfig.Clock.
func NewChaosPlan(cfg ChaosConfig, seed uint64) *ChaosPlan { return chaos.NewPlan(cfg, seed, nil) }

// RunChaosSoak runs one seeded chaos soak against the daemon pipeline
// and checks the resilience invariants (no silent update loss, every
// gap healed by resync, breakers re-closed, graceful drain mid-fault).
func RunChaosSoak(cfg ChaosSoakConfig) *ChaosSoakReport { return chaos.RunSoak(cfg) }

// --- Scenarios: declarative failure timelines --------------------------

type (
	// Scenario is one declarative failure scenario: a parameterized peer
	// topology plus a scripted event timeline.
	Scenario = scenario.Spec
	// ScenarioPeer declares one provider of a scenario topology.
	ScenarioPeer = scenario.Peer
	// ScenarioEvent is one scripted event (peer-down, link-flap, ...).
	ScenarioEvent = scenario.Event
	// ScenarioRunner is the consolidated execution front door: modes,
	// sizes, seed, table override, progress, trace/metrics attachments
	// and the time-source factory, with Run/RunNamed/RunUnit methods.
	// The zero value runs the default standalone-vs-supercharged compare.
	ScenarioRunner = scenario.Runner
	// ScenarioReport carries the per-event convergence measurements of a
	// scenario execution, renderable as JSON, CSV or a text table.
	ScenarioReport = scenario.Report
)

// Scenario event kinds and detection paths. The first block is the
// first-generation single-peer events; the second block is the
// second-generation model (DESIGN.md §7): correlated multi-peer
// failures, BGP session resets with RFC 4724 graceful restart, and
// background UPDATE noise.
const (
	// EventPeerDown cuts a provider's link for good.
	EventPeerDown = sim.EventPeerDown
	// EventPeerUp restores a cut link; the session re-establishes and the
	// peer replays its feed.
	EventPeerUp = sim.EventPeerUp
	// EventLinkFlap cuts a link and restores it Hold later; flaps shorter
	// than the detection time are absorbed.
	EventLinkFlap = sim.EventLinkFlap
	// EventPartialWithdraw withdraws the head Fraction of the peer's feed
	// with the link up.
	EventPartialWithdraw = sim.EventPartialWithdraw
	// EventBurstReannounce replays the peer's withdrawn chunk (or full
	// feed) in one burst.
	EventBurstReannounce = sim.EventBurstReannounce
	// EventRuleLoss wipes the switch flow table; the controller resyncs it.
	EventRuleLoss = sim.EventRuleLoss
	// EventControllerRestart takes the controller down for Hold.
	EventControllerRestart = sim.EventControllerRestart

	// EventSRLGDown cuts every link of a shared-risk group (Event.Peers)
	// in one event — a conduit cut taking several providers down at once.
	EventSRLGDown = sim.EventSRLGDown
	// EventSessionReset bounces the peer's BGP session with the link up;
	// Event.Graceful selects RFC 4724 graceful restart (forwarding state
	// preserved) versus a hard restart (blackout until the session
	// re-establishes and replays).
	EventSessionReset = sim.EventSessionReset
	// EventUpdateNoise re-announces feed chunks at Event.Rate updates/s
	// for Event.Hold — background control-plane load during failover.
	EventUpdateNoise = sim.EventUpdateNoise

	// DetectBFD notices failures in BFDMult × BFDInterval (90 ms).
	DetectBFD = sim.DetectBFD
	// DetectHoldTimer waits for the BGP hold timer (90 s default).
	DetectHoldTimer = sim.DetectHoldTimer
)

// Scenarios returns the registered scenarios sorted by name.
func Scenarios() []Scenario { return scenario.List() }

// LookupScenario returns a registered scenario by name.
func LookupScenario(name string) (Scenario, bool) { return scenario.Lookup(name) }

// RegisterScenario validates and registers a user-defined scenario.
func RegisterScenario(s Scenario) error { return scenario.Register(s) }

// ScenarioOptions parameterizes one scenario execution.
//
// Deprecated: use ScenarioRunner.
type ScenarioOptions = scenario.Options

// RunScenario executes a scenario and returns its report.
//
// Deprecated: use ScenarioRunner.Run.
func RunScenario(ctx context.Context, s Scenario, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.Run(ctx, s, opts)
}

// RunScenarioNamed executes a registered scenario by name.
//
// Deprecated: use ScenarioRunner.RunNamed.
func RunScenarioNamed(ctx context.Context, name string, opts ScenarioOptions) (*ScenarioReport, error) {
	return scenario.RunNamed(ctx, name, opts)
}

// --- Sweeps: parallel scenario × mode × size × seed execution ----------

type (
	// SweepSpec declares a sweep: scenarios × modes × table sizes × seeds.
	// The zero SweepSpec covers every registered scenario in both modes.
	SweepSpec = sweep.Spec
	// SweepUnit is one independent run of a sweep.
	SweepUnit = sweep.Unit
	// SweepUnitResult is one completed unit, streamed as workers finish.
	SweepUnitResult = sweep.UnitResult
	// SweepOptions bounds the worker pool, wires progress output, caps
	// the wall-clock budget, and attaches the result store for
	// incremental re-sweeps.
	SweepOptions = sweep.Options
	// SweepAggregate is the deterministic cross-scenario comparison report,
	// renderable as JSON, a text table, or EXPERIMENTS.md markdown. With
	// several seeds every cell is a distribution (median/min/mean/p90/max
	// and IQR across seeds) rather than a point.
	SweepAggregate = sweep.Aggregate
	// ResultStore is the content-addressed on-disk cache of per-unit sweep
	// results; attach one to SweepOptions.Store and unchanged units are
	// served from disk instead of re-run.
	ResultStore = results.Store
)

// OpenResultStore opens (creating if needed) a result store rooted at
// dir.
func OpenResultStore(dir string) (*ResultStore, error) { return results.Open(dir) }

// ExpandSweep resolves a sweep spec into its run units in deterministic
// order.
func ExpandSweep(spec SweepSpec) ([]SweepUnit, error) { return sweep.Expand(spec) }

// StreamSweep executes units across a bounded worker pool, delivering
// each result as it completes; the channel closes when all are done.
// Cancelling the context stops in-flight simulations between events.
func StreamSweep(ctx context.Context, units []SweepUnit, opts SweepOptions) <-chan SweepUnitResult {
	return sweep.Stream(ctx, units, opts)
}

// RunSweep expands, executes and aggregates a sweep. Unit failures are
// reported in the aggregate rather than aborting the sweep; a cancelled
// or over-budget sweep returns the partial aggregate alongside the
// context error.
func RunSweep(ctx context.Context, spec SweepSpec, opts SweepOptions) (*SweepAggregate, error) {
	return sweep.Run(ctx, spec, opts)
}

// --- Telemetry: opt-in observability (DESIGN.md §9) --------------------
//
// Everything is nil-is-off: instrumented and bare runs produce
// byte-identical reports.

type (
	// MetricsRegistry holds counters, gauges and histograms and renders
	// the Prometheus text exposition; a nil registry disables every hook.
	MetricsRegistry = telemetry.Registry
	// ConvergenceTrace records the convergence pipeline as structured
	// spans in source time, exportable as JSONL or Chrome trace-event
	// JSON (Perfetto-openable).
	ConvergenceTrace = telemetry.Trace
	// TraceSpan is one recorded pipeline interval or instant.
	TraceSpan = telemetry.Span
	// TelemetryServer is the opt-in HTTP endpoint serving /metrics,
	// /runs and /debug/pprof.
	TelemetryServer = telemetry.Server
	// RunTracker follows sweep units through their lifecycle for the
	// live /runs page; attach via SweepOptions.Runs.
	RunTracker = telemetry.RunTracker
)

// NewMetricsRegistry builds an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewConvergenceTrace builds an empty trace recorder.
func NewConvergenceTrace() *ConvergenceTrace { return telemetry.NewTrace() }

// ServeTelemetry starts the observability endpoint on addr (":0" picks
// an ephemeral port; the bound address is in the returned server's
// Addr). reg and runs may each be nil.
func ServeTelemetry(addr string, reg *MetricsRegistry, runs *RunTracker) (*TelemetryServer, error) {
	return telemetry.Serve(addr, reg, runs)
}

// --- Feeds and MRT: routing tables the lab announces -------------------
//
// From the synthetic generator or a real RFC 6396 dump (docs/feeds.md,
// DESIGN.md §10).

type (
	// FeedTable is a routing table: routes over a shared, interned
	// attribute-template pool. Both backends produce one.
	FeedTable = feed.Table
	// FeedConfig parameterizes the synthetic generator.
	FeedConfig = feed.Config
	// FeedDump is a loaded MRT dump: the merged table plus per-peer views.
	FeedDump = feed.Dump
	// MRTReader streams records from an RFC 6396 dump (gzip'd or plain).
	MRTReader = mrt.Reader
	// MRTWriter renders records as an RFC 6396 dump.
	MRTWriter = mrt.Writer
	// MRTRecord is one decoded MRT record.
	MRTRecord = mrt.Record
)

// GenerateFeed builds the synthetic table: N prefixes over a template
// pool, deterministic per (N, Seed).
func GenerateFeed(cfg FeedConfig) *FeedTable { return feed.Generate(cfg) }

// LoadMRT reads a TABLE_DUMP_V2 dump (gzip detected transparently) into
// a merged table plus per-peer views sharing one interned template pool.
func LoadMRT(r io.Reader) (*FeedDump, error) { return feed.FromMRT(r) }

// NewMRTReader wraps r for record-at-a-time decoding; NewMRTWriter is
// its inverse.
func NewMRTReader(r io.Reader) *MRTReader { return mrt.NewReader(r) }

// NewMRTWriter returns a writer rendering records to w.
func NewMRTWriter(w io.Writer) *MRTWriter { return mrt.NewWriter(w) }
