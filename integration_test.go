package supercharged

// Full-system integration test in real mode: every protocol on real
// transports (BGP over net.Pipe transports, OpenFlow over net.Pipe,
// data-plane frames over emulated links), the complete Fig. 4 topology,
// live traffic, a link failure, and the supercharged failover — scaled
// down from the paper's 512k prefixes to stay CI-friendly.

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/clock"
	"supercharged/internal/core"
	"supercharged/internal/feed"
	"supercharged/internal/netem"
	"supercharged/internal/openflow"
	"supercharged/internal/packet"
	"supercharged/internal/router"
	"supercharged/internal/trafficgen"
)

// provider is R2/R3: a BGP speaker plus a data-plane endpoint that answers
// ARP for its address and sinks probe traffic.
type provider struct {
	addr netip.Addr
	as   uint32
	mac  packet.MAC
	sess *bgp.Session
	sink *trafficgen.Sink
}

func newProvider(addr netip.Addr, as uint32, mac packet.MAC, port *netem.Port, dests []netip.Addr) *provider {
	p := &provider{addr: addr, as: as, mac: mac}
	p.sink = trafficgen.NewSink(trafficgen.SinkConfig{Expected: dests})
	port.Handle(func(frame []byte) {
		var eth packet.Ethernet
		if eth.DecodeFromBytes(frame) != nil {
			return
		}
		switch eth.Type {
		case packet.EtherTypeARP:
			var arp packet.ARP
			if arp.DecodeFromBytes(eth.Payload) == nil && arp.Op == packet.ARPRequest && arp.TargetIP == p.addr {
				reply, _ := packet.ARPReplyFrame(packet.NewBuffer(), p.mac, p.addr, arp)
				port.Send(reply)
			}
		case packet.EtherTypeIPv4:
			if eth.Dst == p.mac {
				p.sink.HandleFrame(frame)
			}
		}
	})
	return p
}

func pipePair() (func() (net.Conn, error), chan net.Conn) {
	ch := make(chan net.Conn, 4)
	return func() (net.Conn, error) {
		a, b := net.Pipe()
		ch <- b
		return a, nil
	}, ch
}

func waitCond(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestFullSystemSuperchargedFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system test skipped in -short mode")
	}
	const (
		nPrefixes = 300
		nFlows    = 20
	)
	var (
		routerIP  = netip.MustParseAddr("203.0.113.254")
		ctrlIP    = netip.MustParseAddr("203.0.113.253")
		r2IP      = netip.MustParseAddr("203.0.113.1")
		r3IP      = netip.MustParseAddr("198.51.100.2")
		routerMAC = packet.MustParseMAC("00:ff:00:00:00:01")
		r2MAC     = packet.MustParseMAC("01:aa:00:00:00:01")
		r3MAC     = packet.MustParseMAC("02:bb:00:00:00:01")
		srcMAC    = packet.MustParseMAC("00:01:00:00:00:99")
	)

	// --- data plane: switch in the middle of everything (Fig. 4) ---
	clk := clock.Real{}
	linkR1 := netem.NewLink(clk, "r1", "sw1", 0)
	linkR2 := netem.NewLink(clk, "r2", "sw2", 0)
	linkR3 := netem.NewLink(clk, "r3", "sw3", 0)
	linkSrc := netem.NewLink(clk, "src", "sw4", 0)
	r1Port, sw1 := linkR1.Ports()
	r2Port, sw2 := linkR2.Ports()
	r3Port, sw3 := linkR3.Ports()
	srcPort, sw4 := linkSrc.Ports()

	// --- control plane plumbing ---
	ofDial, _ := func() (func() (net.Conn, error), chan net.Conn) { return nil, nil }()
	_ = ofDial

	table := feed.Generate(feed.Config{N: nPrefixes, Seed: 42})
	dests := table.SamplePrefixes(nFlows, 1)
	destIPs := make([]netip.Addr, len(dests))
	for i, p := range dests {
		destIPs[i] = p.Addr().Next() // first host in the prefix
	}

	p2Dial, p2Accepted := pipePair()
	p3Dial, p3Accepted := pipePair()
	routerDial, routerAccepted := pipePair()

	ctrl := core.NewController(core.ControllerConfig{
		LocalAS:  65001,
		RouterID: ctrlIP,
		Peers: []core.PeerConfig{
			{Addr: r2IP, AS: 65002, MAC: r2MAC, SwitchPort: 2, Weight: 200, Dial: p2Dial},
			{Addr: r3IP, AS: 65003, MAC: r3MAC, SwitchPort: 3, Weight: 100, Dial: p3Dial},
		},
		Router:     core.RouterConfig{Addr: routerIP, AS: 65000, MAC: routerMAC, SwitchPort: 1},
		SwitchDPID: 0x53,
		AllocMode:  core.AllocDeterministic,
	})

	sw := openflow.NewSwitch(openflow.SwitchConfig{
		DPID:  0x53,
		Ports: map[uint16]*netem.Port{1: sw1, 2: sw2, 3: sw3, 4: sw4},
		Dial: func() (net.Conn, error) {
			a, b := net.Pipe()
			go ctrl.OpenFlow().HandleConn(b)
			return a, nil
		},
		InstallLatency: time.Millisecond,
		PuntOnMiss:     true,
	})

	r1 := router.New(router.Config{
		AS: 65000, RouterID: routerIP, IfIP: routerIP, IfMAC: routerMAC,
		Port: r1Port, PerEntry: 100 * time.Microsecond,
		Neighbors: []router.NeighborConfig{{Addr: ctrlIP, AS: 65001, Dial: routerDial}},
	})

	prov2 := newProvider(r2IP, 65002, r2MAC, r2Port, destIPs)
	prov3 := newProvider(r3IP, 65003, r3MAC, r3Port, destIPs)
	prov2.sess = bgp.NewSession(bgp.SessionConfig{LocalAS: 65002, LocalID: r2IP, PeerAS: 65001, PeerAddr: ctrlIP})
	prov3.sess = bgp.NewSession(bgp.SessionConfig{LocalAS: 65003, LocalID: r3IP, PeerAS: 65001, PeerAddr: ctrlIP})
	go func() {
		for conn := range p2Accepted {
			go prov2.sess.Accept(conn)
		}
	}()
	go func() {
		for conn := range p3Accepted {
			go prov3.sess.Accept(conn)
		}
	}()
	go func() {
		for conn := range routerAccepted {
			ctrl.AcceptRouter(conn)
		}
	}()

	// --- bring-up ---
	ctrl.Start()
	defer ctrl.Stop()
	sw.Start()
	defer sw.Stop()
	r1.Start()
	defer r1.Stop()

	waitCond(t, "peer sessions", 10*time.Second, func() bool {
		return prov2.sess.Established() && prov3.sess.Established()
	})
	waitCond(t, "router session", 10*time.Second, ctrl.RouterEstablished)

	// --- providers advertise the same table ---
	codec := bgp.Codec{ASN4: true}
	for _, pr := range []*provider{prov2, prov3} {
		ups, err := table.Updates(pr.as, pr.addr, codec)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range ups {
			if err := pr.sess.Send(u); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The router must learn every prefix, resolve the VNH via ARP through
	// the switch/controller and install VMAC-tagged FIB entries. Plain
	// entries are a legitimate transient while the second feed is still
	// arriving, so the steady-state predicate is "every probe prefix is
	// VMAC-tagged", not just "table full".
	waitCond(t, "router FIB population (VMAC-tagged)", 30*time.Second, func() bool {
		if r1.FIB().Len() < nPrefixes || r1.FIB().QueueLen() != 0 {
			return false
		}
		for _, p := range dests {
			nh, ok := r1.FIB().Get(p)
			if !ok || !nh.MAC.IsLocal() {
				return false
			}
		}
		return true
	})
	if got := ctrl.Groups().Len(); got != 1 {
		t.Fatalf("backup groups %d, want 1", got)
	}

	// --- traffic ---
	src := trafficgen.NewSource(trafficgen.SourceConfig{
		Port: srcPort, SrcMAC: srcMAC, GatewayMAC: routerMAC,
		SrcIP: netip.MustParseAddr("192.0.2.10"),
		Dests: destIPs, Interval: 5 * time.Millisecond,
	})
	src.Start()
	defer src.Stop()

	// Warm-up: all flows must arrive at R2 (the preferred provider).
	waitCond(t, "traffic at R2", 10*time.Second, func() bool {
		for _, d := range destIPs {
			if fs, _ := prov2.sink.Stats(d); fs.Packets < 3 {
				return false
			}
		}
		return true
	})
	if fs, _ := prov3.sink.Stats(destIPs[0]); fs.Packets != 0 {
		t.Fatal("traffic leaked to the backup before the failure")
	}

	// --- failure: cut R2 and signal detection (BFD's role) ---
	linkR2.Fail()
	detection := 90 * time.Millisecond // the BFD budget (30ms × 3)
	time.Sleep(detection)
	ctrl.PeerDown(r2IP)

	// All flows must recover via R3.
	waitCond(t, "traffic at R3 after failover", 10*time.Second, func() bool {
		for _, d := range destIPs {
			if fs, _ := prov3.sink.Stats(d); fs.Packets < 3 {
				return false
			}
		}
		return true
	})
	if got := ctrl.Engine().Rewrites(); got != 1 {
		t.Fatalf("failure rewrote %d rules, want exactly 1", got)
	}
	st := ctrl.Status()
	if len(st.Groups) != 1 || st.Groups[0].Target != r3IP.String() {
		t.Fatalf("status after failover: %+v", st.Groups)
	}
	var sawDown bool
	for _, p := range st.Peers {
		if p.Addr == r2IP.String() && p.Down {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatalf("status does not reflect the failed peer: %+v", st.Peers)
	}
}
