// Command lab regenerates the paper's evaluation artifacts (DESIGN.md's
// experiment index):
//
//	lab -experiment fig5       # Fig. 5: convergence vs prefix count (E1/E2/E5)
//	lab -experiment micro      # controller per-update latency (E3)
//	lab -experiment groups     # backup-group count vs peers (E4)
//	lab -experiment ablation   # A1 replicas, A2 k=3, A3 BFD sweep
//	lab -experiment all
//
// The fig5 sweep defaults to the paper's full 1k..500k; -sizes trims it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"supercharged/internal/lab"
	"supercharged/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	experiment := flag.String("experiment", "all", "fig5|micro|groups|ablation|all")
	sizes := flag.String("sizes", "", "comma-separated prefix counts for fig5 (default: paper sweep)")
	runs := flag.Int("runs", 3, "repetitions per fig5 cell (paper: 3)")
	prefixes := flag.Int("prefixes", 500_000, "feed size for the micro benchmark (paper: 500k)")
	listen := flag.String("listen", "", "serve /metrics, /runs and /debug/pprof on this address while experiments run")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	var progress *os.File
	if !*quiet {
		progress = os.Stderr
	}

	// The tracker treats each experiment as one tracked unit, so /runs
	// shows which experiment is in flight; /debug/pprof is the real payoff
	// here — the lab's long sweeps are where CPU profiles matter.
	var tracker *telemetry.RunTracker
	if *listen != "" {
		tracker = telemetry.NewRunTracker(0)
		srv, err := telemetry.Serve(*listen, telemetry.NewRegistry(), tracker)
		if err != nil {
			log.Fatalf("lab: -listen: %v", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "lab: serving /metrics, /runs, /debug/pprof on http://%s\n", srv.Addr)
	}

	run := func(name string, fn func() error) {
		fmt.Printf("== %s ==\n", name)
		t0 := time.Now()
		tracker.Start(name)
		err := fn()
		tracker.Finish(name, time.Since(t0), false, err)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	if want("fig5") {
		run("fig5 — convergence vs prefixes (E1/E2/E5)", func() error {
			cfg := lab.Fig5Config{Runs: *runs, Flows: 100, Seed: 1}
			if *sizes != "" {
				for _, s := range strings.Split(*sizes, ",") {
					n, err := strconv.Atoi(strings.TrimSpace(s))
					if err != nil {
						return err
					}
					cfg.Sizes = append(cfg.Sizes, n)
				}
			}
			res, err := lab.RunFig5(ctx, cfg, progress)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
			best, err := lab.FirstEntry(ctx, 1_000, *runs, 1)
			if err != nil {
				return err
			}
			fmt.Printf("standalone best case (first FIB entry): %v (paper: 375ms)\n", best.Round(time.Millisecond))
			return nil
		})
	}
	if want("micro") {
		run("micro — controller per-update latency (E3)", func() error {
			res, err := lab.RunMicro(ctx, lab.MicroConfig{Prefixes: *prefixes, Seed: 1})
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
			return nil
		})
	}
	if want("groups") {
		run("groups — backup-group scaling (E4)", func() error {
			rows, err := lab.RunGroups(ctx, lab.GroupsConfig{MaxPeers: 10})
			if err != nil {
				return err
			}
			fmt.Println(lab.RenderGroups(rows))
			return nil
		})
	}
	if want("ablation") {
		run("ablation A1 — replica determinism", func() error {
			rows, err := lab.RunReplicaDeterminism(ctx, 2_000, 4, 1)
			if err != nil {
				return err
			}
			fmt.Println(lab.RenderReplicaDeterminism(rows))
			return nil
		})
		run("ablation A2 — backup-group size k=3, double failure", func() error {
			res, err := lab.RunK3(ctx, 5_000, 1)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
			return nil
		})
		run("ablation A3 — BFD interval sweep", func() error {
			rows, err := lab.RunBFDSweep(ctx, 10_000, nil, 1)
			if err != nil {
				return err
			}
			fmt.Println(lab.RenderBFDSweep(rows))
			return nil
		})
	}
}
