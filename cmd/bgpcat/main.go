// Command bgpcat decodes wire-format messages from hex input — a debug
// companion for the protocol substrates.
//
//	echo ffffffffffffffffffffffffffffffff001304 | bgpcat           # BGP
//	bgpcat -proto of   < openflow-hex.txt                          # OpenFlow
//	bgpcat -proto bfd  < bfd-hex.txt                               # BFD
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"supercharged/internal/bfd"
	"supercharged/internal/bgp"
	"supercharged/internal/openflow"
)

func main() {
	proto := flag.String("proto", "bgp", "bgp|of|bfd")
	asn4 := flag.Bool("asn4", true, "decode BGP AS_PATH with 4-octet ASNs")
	flag.Parse()

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		text := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' || r == ':' {
				return -1
			}
			return r
		}, scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		raw, err := hex.DecodeString(text)
		if err != nil {
			log.Printf("line %d: %v", lineNo, err)
			continue
		}
		switch *proto {
		case "bgp":
			msg, err := (bgp.Codec{ASN4: *asn4}).Unmarshal(raw)
			if err != nil {
				log.Printf("line %d: %v", lineNo, err)
				continue
			}
			switch m := msg.(type) {
			case *bgp.Open:
				fmt.Printf("OPEN version=%d as=%d hold=%d id=%s caps=%d\n", m.Version, m.AS, m.HoldTime, m.ID, len(m.Caps))
			case *bgp.Update:
				fmt.Printf("UPDATE %s\n", m)
			case *bgp.Notification:
				fmt.Printf("%s\n", m)
			case *bgp.Keepalive:
				fmt.Println("KEEPALIVE")
			}
		case "of":
			msg, xid, err := openflow.Unmarshal(raw)
			if err != nil {
				log.Printf("line %d: %v", lineNo, err)
				continue
			}
			fmt.Printf("%s xid=%d %+v\n", msg.MsgType(), xid, msg)
		case "bfd":
			var p bfd.ControlPacket
			if err := p.Unmarshal(raw); err != nil {
				log.Printf("line %d: %v", lineNo, err)
				continue
			}
			fmt.Printf("BFD state=%s diag=%s my=%d your=%d tx=%v mult=%d\n",
				p.State, p.Diag, p.MyDiscr, p.YourDiscr, p.DesiredMinTx, p.DetectMult)
		default:
			log.Fatalf("unknown -proto %q", *proto)
		}
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}
}
