// Command bgpcat decodes wire-format messages — a debug companion for
// the protocol substrates. Stdin carries hex (one message per line);
// file arguments carry raw binary, which is how real captures and MRT
// dumps arrive.
//
//	echo ffffffffffffffffffffffffffffffff001304 | bgpcat           # BGP
//	bgpcat -proto of   < openflow-hex.txt                          # OpenFlow
//	bgpcat -proto bfd  < bfd-hex.txt                               # BFD
//	bgpcat -proto mrt  bview.20150801.mrt.gz                       # MRT dump
//	bgpcat updates.bin                                             # framed BGP
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"supercharged/internal/bfd"
	"supercharged/internal/bgp"
	"supercharged/internal/mrt"
	"supercharged/internal/openflow"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with its edges injected, so the smoke tests drive the
// whole command without a subprocess. Returns the exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bgpcat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	proto := fs.String("proto", "bgp", "bgp|of|bfd|mrt")
	asn4 := fs.Bool("asn4", true, "decode BGP AS_PATH with 4-octet ASNs")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *proto {
	case "bgp", "of", "bfd", "mrt":
	default:
		fmt.Fprintf(stderr, "bgpcat: unknown -proto %q\n", *proto)
		return 2
	}

	// File arguments are raw binary streams; stdin is hex lines. MRT is
	// inherently a binary stream format, so -proto mrt needs files.
	if files := fs.Args(); len(files) > 0 {
		code := 0
		for _, path := range files {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(stderr, "bgpcat: %v\n", err)
				code = 1
				continue
			}
			err = decodeStream(*proto, *asn4, f, stdout, stderr)
			f.Close()
			if err != nil {
				fmt.Fprintf(stderr, "bgpcat: %s: %v\n", path, err)
				code = 1
			}
		}
		return code
	}
	if *proto == "mrt" {
		if err := decodeStream("mrt", *asn4, stdin, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "bgpcat: %v\n", err)
			return 1
		}
		return 0
	}
	return decodeHexLines(*proto, *asn4, stdin, stdout, stderr)
}

// decodeStream decodes a raw binary stream: MRT records, or
// back-to-back framed BGP messages. The hex-line protos have no framing
// to recover from a byte stream, so files reject them.
func decodeStream(proto string, asn4 bool, r io.Reader, stdout, stderr io.Writer) error {
	switch proto {
	case "mrt":
		return decodeMRT(r, stdout)
	case "bgp":
		br := bufio.NewReader(r)
		codec := bgp.Codec{ASN4: asn4}
		for {
			msg, err := codec.ReadMessage(br)
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			printBGP(stdout, msg)
		}
	default:
		return fmt.Errorf("-proto %s has no stream framing; pipe hex lines on stdin instead", proto)
	}
}

// decodeMRT prints one line per MRT record. Decode errors end the
// stream — a corrupt record leaves no resynchronization point.
func decodeMRT(r io.Reader, w io.Writer) error {
	rd := mrt.NewReader(r)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch {
		case rec.PeerIndex != nil:
			fmt.Fprintf(w, "PEER_INDEX_TABLE collector=%s view=%q peers=%d\n",
				rec.PeerIndex.CollectorID, rec.PeerIndex.ViewName, len(rec.PeerIndex.Peers))
		case rec.RIB != nil:
			for _, e := range rec.RIB.Entries {
				peer := fmt.Sprintf("#%d", e.PeerIndex)
				if pi := rd.PeerIndex(); pi != nil && int(e.PeerIndex) < len(pi.Peers) {
					p := pi.Peers[e.PeerIndex]
					peer = fmt.Sprintf("%s (AS%d)", p.Addr, p.AS)
				}
				pathID := ""
				if rec.RIB.AddPath {
					pathID = fmt.Sprintf(" path-id=%d", e.PathID)
				}
				fmt.Fprintf(w, "RIB seq=%d %s via %s%s as-path [%s]\n",
					rec.RIB.Seq, rec.RIB.Prefix, peer, pathID, e.Attrs.ASPath)
			}
		case rec.BGP4MP != nil:
			m := rec.BGP4MP
			if m.StateChange {
				fmt.Fprintf(w, "BGP4MP STATE_CHANGE peer=%s as=%d %d->%d\n", m.PeerIP, m.PeerAS, m.OldState, m.NewState)
			} else {
				fmt.Fprintf(w, "BGP4MP MESSAGE peer=%s as=%d ", m.PeerIP, m.PeerAS)
				printBGP(w, m.Message)
			}
		default:
			fmt.Fprintf(w, "SKIP type=%d subtype=%d len=%d\n", rec.Header.Type, rec.Header.Subtype, rec.Header.Length)
		}
	}
}

func printBGP(w io.Writer, msg bgp.Message) {
	switch m := msg.(type) {
	case *bgp.Open:
		fmt.Fprintf(w, "OPEN version=%d as=%d hold=%d id=%s caps=%d\n", m.Version, m.AS, m.HoldTime, m.ID, len(m.Caps))
	case *bgp.Update:
		fmt.Fprintf(w, "UPDATE %s\n", m)
	case *bgp.Notification:
		fmt.Fprintf(w, "%s\n", m)
	case *bgp.Keepalive:
		fmt.Fprintln(w, "KEEPALIVE")
	}
}

func decodeHexLines(proto string, asn4 bool, stdin io.Reader, stdout, stderr io.Writer) int {
	scanner := bufio.NewScanner(stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		text := strings.Map(func(r rune) rune {
			if r == ' ' || r == '\t' || r == ':' {
				return -1
			}
			return r
		}, scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		raw, err := hex.DecodeString(text)
		if err != nil {
			fmt.Fprintf(stderr, "line %d: %v\n", lineNo, err)
			continue
		}
		switch proto {
		case "bgp":
			msg, err := (bgp.Codec{ASN4: asn4}).Unmarshal(raw)
			if err != nil {
				fmt.Fprintf(stderr, "line %d: %v\n", lineNo, err)
				continue
			}
			printBGP(stdout, msg)
		case "of":
			msg, xid, err := openflow.Unmarshal(raw)
			if err != nil {
				fmt.Fprintf(stderr, "line %d: %v\n", lineNo, err)
				continue
			}
			fmt.Fprintf(stdout, "%s xid=%d %+v\n", msg.MsgType(), xid, msg)
		case "bfd":
			var p bfd.ControlPacket
			if err := p.Unmarshal(raw); err != nil {
				fmt.Fprintf(stderr, "line %d: %v\n", lineNo, err)
				continue
			}
			fmt.Fprintf(stdout, "BFD state=%s diag=%s my=%d your=%d tx=%v mult=%d\n",
				p.State, p.Diag, p.MyDiscr, p.YourDiscr, p.DesiredMinTx, p.DetectMult)
		}
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(stderr, "bgpcat: %v\n", err)
		return 1
	}
	return 0
}
