package main

import (
	"bytes"
	"encoding/hex"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supercharged/internal/bgp"
	"supercharged/internal/mrt"
)

// smoke drives run() end to end and returns (exit code, stdout, stderr).
func smoke(t *testing.T, args []string, stdin []byte) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := run(args, bytes.NewReader(stdin), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func TestHexStdinBGP(t *testing.T) {
	raw, err := bgp.Codec{}.Marshal(&bgp.Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	in := "# comment\n\n" + hex.EncodeToString(raw) + "\n"
	code, out, stderr := smoke(t, nil, []byte(in))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if strings.TrimSpace(out) != "KEEPALIVE" {
		t.Fatalf("stdout: %q", out)
	}
}

func TestHexStdinBadLineContinues(t *testing.T) {
	raw, err := bgp.Codec{}.Marshal(&bgp.Keepalive{})
	if err != nil {
		t.Fatal(err)
	}
	in := "nothex\n" + hex.EncodeToString(raw) + "\n"
	code, out, stderr := smoke(t, nil, []byte(in))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "KEEPALIVE") || !strings.Contains(stderr, "line 1") {
		t.Fatalf("stdout %q stderr %q", out, stderr)
	}
}

// writeDump renders a tiny MRT dump: a peer index, one RIB record, one
// BGP4MP keepalive.
func writeDump(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dump.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := mrt.NewWriter(f)
	peer := netip.MustParseAddr("203.0.113.1")
	if err := w.WritePeerIndex(&mrt.PeerIndex{
		ViewName: "smoke",
		Peers:    []mrt.Peer{{Addr: peer, AS: 65002}},
	}); err != nil {
		t.Fatal(err)
	}
	attrs := &bgp.Attrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Sequence(65002, 64512),
		NextHop: peer,
	}
	if err := w.WriteRIB(netip.MustParsePrefix("10.0.0.0/8"),
		[]mrt.RIBEntry{{PeerIndex: 0, Attrs: attrs}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBGP4MP(&mrt.BGP4MP{
		PeerAS: 65002, LocalAS: 65001,
		PeerIP: peer, LocalIP: netip.MustParseAddr("203.0.113.2"),
		Message: &bgp.Keepalive{},
	}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMRTFile(t *testing.T) {
	path := writeDump(t)
	code, out, stderr := smoke(t, []string{"-proto", "mrt", path}, nil)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{
		`PEER_INDEX_TABLE collector=192.0.2.255 view="smoke" peers=1`,
		"RIB seq=0 10.0.0.0/8 via 203.0.113.1 (AS65002) as-path [65002 64512]",
		"BGP4MP MESSAGE peer=203.0.113.1 as=65002 KEEPALIVE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBGPFileStream(t *testing.T) {
	var buf bytes.Buffer
	c := bgp.Codec{}
	for _, m := range []bgp.Message{&bgp.Keepalive{}, &bgp.Notification{Code: bgp.NotifCease, Subcode: 4}} {
		if err := c.WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "updates.bin")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := smoke(t, []string{path}, nil)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "KEEPALIVE") || !strings.Contains(out, "cease") {
		t.Fatalf("stdout: %q", out)
	}
}

func TestErrors(t *testing.T) {
	if code, _, _ := smoke(t, []string{"-proto", "nope"}, nil); code != 2 {
		t.Errorf("unknown proto: exit %d, want 2", code)
	}
	if code, _, stderr := smoke(t, []string{"no/such/file.mrt", "-proto", "mrt"}, nil); code == 0 {
		t.Errorf("missing file: exit 0, stderr %q", stderr)
	}
	// Hex-line protos have no stream framing: files reject them.
	path := writeDump(t)
	if code, _, stderr := smoke(t, []string{"-proto", "of", path}, nil); code != 1 ||
		!strings.Contains(stderr, "no stream framing") {
		t.Errorf("of over file: exit %d, stderr %q", code, stderr)
	}
	// A truncated MRT file fails with the reader's typed error surfaced.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(t.TempDir(), "cut.mrt")
	if err := os.WriteFile(cut, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, stderr := smoke(t, []string{"-proto", "mrt", cut}, nil); code != 1 ||
		!strings.Contains(stderr, "truncated") {
		t.Errorf("truncated dump: exit %d, stderr %q", code, stderr)
	}
}
