// Command bench is the CI performance gate: the sweep mode (default)
// runs the default sweep (every registered scenario, both router modes)
// at multiple seeds, snapshots per-scenario wall-clock cost and the
// median convergence time of every (scenario, size, event, mode) cell,
// and — given a baseline — fails when anything regressed beyond
// tolerance:
//
//	bench -o BENCH_sweep.json                    # write/refresh the baseline
//	bench -o out.json -baseline BENCH_sweep.json # CI: snapshot + gate
//	bench -seeds 5 -store .sweep-cache           # defaults, spelled out
//
// The micro mode runs the hot-path micro-benchmark suite
// (internal/microbench: indexed vs full-scan RemovePeer at the 1M-prefix
// shape, RIB update churn, the processor's zero-alloc churn filter,
// group allocation) and gates BENCH_micro.json the same way:
//
//	bench micro -o BENCH_micro.json                     # refresh the baseline
//	bench micro -o out.json -baseline BENCH_micro.json  # CI: snapshot + gate
//	bench micro -filter remove-peer -cpuprofile rp.prof # profile one workload
//
// Snapshots are written BEFORE the gate runs, so CI can upload them as
// artifacts even on a failing push. Convergence medians and allocation
// counts are deterministic; wall-clock and ns/op numbers are host
// telemetry and get a fractional tolerance plus an absolute grace floor.
// Accepting a slower-but-correct change is a deliberate act: regenerate
// the baseline (`go run ./cmd/bench -store "" -o BENCH_sweep.json`, or
// `go run ./cmd/bench micro -o BENCH_micro.json`) and commit it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime/pprof"
	"time"

	"supercharged/internal/microbench"
	"supercharged/internal/results"
	"supercharged/internal/sweep"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "micro" {
		benchMicro(os.Args[2:])
		return
	}
	benchSweep()
}

// benchMicro is the `bench micro` mode: run the hot-path suite, write
// the snapshot, optionally gate against a committed baseline.
func benchMicro(args []string) {
	fs := flag.NewFlagSet("micro", flag.ExitOnError)
	out := fs.String("o", "BENCH_micro.json", "output snapshot path")
	baseline := fs.String("baseline", "", "baseline snapshot to gate against (empty = no gate)")
	tolerance := fs.Float64("tolerance", 0.20, "max fractional ns/op regression (plus absolute grace floor)")
	filter := fs.String("filter", "", "run only benchmarks whose name contains the substring")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the suite run (pprof)")
	quiet := fs.Bool("q", false, "suppress per-benchmark progress output")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "bench micro: unexpected arguments %v\n", fs.Args())
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench micro: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench micro: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	opts := microbench.Options{Filter: *filter}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	t0 := time.Now()
	snap, err := microbench.Run(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench micro: %v\n", err)
		os.Exit(1)
	}
	data, err := snap.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench micro: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench micro: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench micro: wrote %s (%d benchmarks, %v wall)\n",
		*out, len(snap.Benchmarks), time.Since(t0).Round(time.Millisecond))
	if speedup := snap.IndexSpeedup(); speedup > 0 {
		fmt.Fprintf(os.Stderr, "bench micro: RemovePeer indexed vs pre-index scan at 1M/10%%: %.1fx\n", speedup)
	}

	if *baseline == "" {
		return
	}
	baseData, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench micro: -baseline: %v\n", err)
		os.Exit(1)
	}
	base, err := microbench.Parse(baseData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench micro: -baseline: %v\n", err)
		os.Exit(1)
	}
	violations := microbench.Compare(base, snap, *tolerance)
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "bench micro: %d regression(s) against %s:\n", len(violations), *baseline)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		fmt.Fprintf(os.Stderr, "bench micro: if intentional, refresh the baseline: go run ./cmd/bench micro -o %s && git add %s\n",
			*baseline, *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench micro: no regressions against %s (tolerance %.0f%% + grace floor)\n",
		*baseline, *tolerance*100)
}

func benchSweep() {
	out := flag.String("o", "BENCH_sweep.json", "output snapshot path")
	baseline := flag.String("baseline", "", "baseline snapshot to gate against (empty = no gate)")
	seeds := flag.String("seeds", "5", "seed count, or comma-separated explicit seeds")
	tolerance := flag.Float64("tolerance", 0.20, "max fractional regression of any median convergence time")
	wallTol := flag.Float64("wall-tolerance", 0.20, "max fractional regression of sweep wall-clock")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	storeDir := flag.String("store", ".sweep-cache", "result-store directory for incremental re-sweeps (empty = disabled)")
	budget := flag.Duration("budget", 0, "wall-clock budget for the sweep (0 = none)")
	quiet := flag.Bool("q", false, "suppress per-run progress output")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "bench: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	seedList, err := sweep.ParseSeeds(*seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: -seeds: %v\n", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := sweep.Options{Workers: *workers, Budget: *budget}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *storeDir != "" {
		store, err := results.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: %v\n", err)
			os.Exit(1)
		}
		opts.Store = store
	}
	walls := make(map[string]float64)
	cached := 0
	opts.OnResult = func(res sweep.UnitResult) {
		walls[res.Unit.Scenario] += float64(res.Wall) / float64(time.Millisecond)
		if res.Cached {
			cached++
		}
	}

	t0 := time.Now()
	agg, err := sweep.Run(ctx, sweep.Spec{Seeds: seedList}, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if agg.Failed > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d of %d runs failed; refusing to snapshot a broken sweep\n",
			agg.Failed, agg.Units)
		os.Exit(1)
	}
	bench := sweep.NewBench(agg, walls, cached, float64(time.Since(t0))/float64(time.Millisecond))

	data, err := bench.JSON()
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s (%d units, %d cached, %.0f ms wall)\n",
		*out, bench.Units, bench.CachedUnits, bench.TotalWallMS)

	if *baseline == "" {
		return
	}
	baseData, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: -baseline: %v\n", err)
		os.Exit(1)
	}
	base, err := sweep.ParseBench(baseData)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: -baseline: %v\n", err)
		os.Exit(1)
	}
	violations := sweep.CompareBench(base, bench, *tolerance, *wallTol)
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "bench: %d regression(s) against %s:\n", len(violations), *baseline)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  - %s\n", v)
		}
		// The refresh command disables the store: a baseline snapshotted
		// off a warm cache would commit near-zero wall numbers.
		fmt.Fprintf(os.Stderr, "bench: if intentional, refresh the baseline: go run ./cmd/bench -store \"\" -o %s && git add %s\n",
			*baseline, *baseline)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bench: no regressions against %s (tolerance %.0f%% conv / %.0f%% wall)\n",
		*baseline, *tolerance*100, *wallTol*100)
}
