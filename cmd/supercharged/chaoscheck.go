package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/chaos"
	"supercharged/internal/feed"
	"supercharged/internal/telemetry"
)

// chaoscheckMain is the `supercharged chaoscheck` subcommand: one
// seeded chaos soak against the daemon pipeline, with the resilience
// invariants (no silent update loss, every gap healed, breakers
// re-closed, drain completes mid-fault) checked at the end. Exits
// non-zero if any invariant is violated, so CI can gate on it.
func chaoscheckMain(args []string) {
	fs := flag.NewFlagSet("chaoscheck", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "fault schedule seed")
	mixName := fs.String("mix", "all", "fault mix: drop, stall, crash, corrupt, jitter or all")
	peers := fs.Int("peers", 2, "number of upstream peers")
	routers := fs.Int("routers", 2, "number of downstream routers (FIB sinks)")
	prefixes := fs.Int("prefixes", 5000, "prefixes in the synthetic table (ignored with -mrt)")
	mrtPath := fs.String("mrt", "", "soak against this MRT TABLE_DUMP_V2 file instead of a synthetic table")
	sample := fs.Int("sample", 0, "down-sample the MRT table to this many routes (0 = all)")
	rate := fs.Int("rate", 0, "per-peer replay rate in routes/s (0 = unpaced)")
	timeout := fs.Duration("timeout", 60*time.Second, "replay time budget")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "drain-and-heal time budget")
	verbose := fs.Bool("v", false, "log daemon events during the soak")
	fs.Parse(args)

	var table *feed.Table
	if *mrtPath != "" {
		f, err := os.Open(*mrtPath)
		if err != nil {
			log.Fatal(err)
		}
		dump, err := feed.FromMRT(f)
		f.Close()
		if err != nil {
			log.Fatalf("chaoscheck: parse MRT %s: %v", *mrtPath, err)
		}
		table = dump.Table
		if *sample > 0 && table.Len() > *sample {
			table = table.Sample(*sample)
		}
		log.Printf("chaoscheck: MRT table %s: %d prefixes", *mrtPath, table.Len())
	} else {
		table = feed.Generate(feed.Config{N: *prefixes, Seed: *seed})
		log.Printf("chaoscheck: synthetic table: %d prefixes", table.Len())
	}

	mix, err := chaos.Mix(*mixName)
	if err != nil {
		log.Fatal(err)
	}
	mix = clampCrashPoint(mix, table)
	cfg := chaos.SoakConfig{
		Table:        table,
		Peers:        *peers,
		Routers:      *routers,
		Rate:         *rate,
		Seed:         uint64(*seed),
		Faults:       mix,
		Timeout:      *timeout,
		DrainTimeout: *drainTimeout,
		Telemetry:    telemetry.NewRegistry(),
	}
	if *verbose {
		cfg.Logf = log.Printf
	}

	log.Printf("chaoscheck: mix %s, seed %d, %d peers -> %d routers", *mixName, *seed, *peers, *routers)
	rep := chaos.RunSoak(cfg)
	fmt.Println(rep)
	if !rep.Ok() {
		os.Exit(1)
	}
}

// clampCrashPoint bounds a mix's crash point to the session it will
// actually see. The presets are sized for full-table feeds; a small or
// heavily down-sampled table renders to only a handful of UPDATE
// messages (prefixes pack ~hundreds per message), and a crash point
// past the end of the session would silently never fire. Clamping to
// about a third of the rendered message count keeps the crash inside
// every session while leaving big-table behavior untouched. The count
// is a pure function of the table, so the schedule stays reproducible.
func clampCrashPoint(mix chaos.Config, table *feed.Table) chaos.Config {
	if mix.CrashEvery <= 0 {
		return mix
	}
	msgs := 0
	err := table.StreamUpdates(65001, netip.AddrFrom4([4]byte{203, 0, 113, 10}), bgp.Codec{},
		func(*bgp.Update) error { msgs++; return nil })
	if err != nil {
		return mix
	}
	if bound := max(msgs/3, 2); mix.CrashEvery > bound {
		log.Printf("chaos: table renders to %d update messages; crash point %d -> %d", msgs, mix.CrashEvery, bound)
		mix.CrashEvery = bound
	}
	return mix
}
