package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"supercharged/internal/bgp"
	"supercharged/internal/chaos"
	"supercharged/internal/clock"
	"supercharged/internal/daemon"
	"supercharged/internal/feed"
	"supercharged/internal/telemetry"
)

// serveMain is the `supercharged serve` subcommand: the concurrent
// controller daemon under replayed load. Synthetic or MRT-sourced
// tables stream in from N peers, the sharded RIB converges them, and
// batched best-path changes fan out to the simulated downstream
// routers, with live observability on -listen (/metrics, /debug/pprof).
// SIGINT/SIGTERM (or -duration) trigger a graceful drain.
func serveMain(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9090", "telemetry listen address (/metrics, /debug/pprof)")
	peers := fs.Int("peers", 4, "number of upstream peers")
	prefixes := fs.Int("prefixes", 50000, "prefixes per synthetic peer table (ignored with -mrt)")
	seed := fs.Int64("seed", 1, "synthetic table seed (ignored with -mrt)")
	mrtPath := fs.String("mrt", "", "replay this MRT TABLE_DUMP_V2 file instead of a synthetic table")
	rate := fs.Int("rate", 0, "per-peer replay rate in routes/s (0 = unpaced)")
	loop := fs.Int("loop", 0, "extra replays of each peer's table after the initial announcement")
	routers := fs.Int("routers", 2, "number of downstream routers (FIB sinks)")
	shards := fs.Int("shards", 8, "RIB lock shards")
	duration := fs.Duration("duration", 0, "stop and drain after this long (0 = run until signal)")
	failAfter := fs.Int("fail-after", 0, "fail the first peer's session after this many routes (0 = never)")
	chaosOn := fs.Bool("chaos", false, "inject seeded faults (drops, stalls, crashes) and enable the resilient delivery policies")
	chaosMix := fs.String("chaos-mix", "all", "fault mix with -chaos: drop, stall, crash, corrupt, jitter or all")
	chaosSeed := fs.Int64("chaos-seed", 1, "fault schedule seed with -chaos")
	fs.Parse(args)
	if *peers < 1 {
		log.Fatal("serve: -peers must be >= 1")
	}

	// Load generators: every peer replays the same table (a multihomed
	// prefix set), the first with elevated weight so a scripted
	// -fail-after exercises the failover path end to end.
	var table *feed.Table
	if *mrtPath != "" {
		f, err := os.Open(*mrtPath)
		if err != nil {
			log.Fatal(err)
		}
		dump, err := feed.FromMRT(f)
		f.Close()
		if err != nil {
			log.Fatalf("serve: parse MRT %s: %v", *mrtPath, err)
		}
		table = dump.Table
		log.Printf("serve: MRT table %s: %d prefixes", *mrtPath, table.Len())
	} else {
		table = feed.Generate(feed.Config{N: *prefixes, Seed: *seed})
		log.Printf("serve: synthetic table: %d prefixes (seed %d)", table.Len(), *seed)
	}
	sources := make([]daemon.PeerSource, *peers)
	for i := range sources {
		meta := bgp.PeerMeta{
			Addr: netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}),
			AS:   uint32(65001 + i),
			ID:   netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}),
		}
		src := &daemon.TableReplay{
			PeerName: fmt.Sprintf("peer%d", i),
			Meta:     meta,
			Table:    table,
			Rate:     *rate,
			Loop:     *loop,
		}
		if i == 0 {
			src.Meta.Weight = 100
			src.FailAfter = *failAfter
		}
		sources[i] = src
	}

	sinks := make([]daemon.RouterSink, *routers)
	routerSinks := make([]*daemon.FIBSink, *routers)
	for i := range sinks {
		s := daemon.NewFIBSink(fmt.Sprintf("edge%d", i))
		routerSinks[i] = s
		sinks[i] = s
	}

	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve(*listen, reg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	log.Printf("serve: metrics on http://%s/metrics", srv.Addr)

	cfg := daemon.Config{
		Sources:   sources,
		Routers:   sinks,
		Shards:    *shards,
		SizeHint:  table.Len(),
		Telemetry: reg,
		Logf:      log.Printf,
	}

	// -chaos wraps every source and sink in a seeded fault plan and
	// switches delivery onto the resilient path (retries, breakers,
	// resync). Without it the config stays zero-valued and the daemon
	// behaves exactly as before this flag existed.
	var plan *chaos.Plan
	if *chaosOn {
		mix, err := chaos.Mix(*chaosMix)
		if err != nil {
			log.Fatal(err)
		}
		mix = clampCrashPoint(mix, table)
		plan = chaos.NewPlan(mix, uint64(*chaosSeed), clock.System).WithTelemetry(reg)
		for i := range sources {
			sources[i] = plan.Source(sources[i])
		}
		for i := range sinks {
			sinks[i] = plan.Sink(sinks[i])
		}
		cfg.Sources, cfg.Routers = sources, sinks
		cfg.Delivery = daemon.DefaultDeliveryPolicy()
		cfg.Delivery.Seed = uint64(*chaosSeed)
		cfg.Reconnect = daemon.DefaultReconnectPolicy()
		cfg.Reconnect.Seed = uint64(*chaosSeed)
		// Ride out the whole per-entity fault budget: a peer must never
		// exhaust its reconnect attempts while the plan can still crash it.
		cfg.Reconnect.MaxAttempts = chaos.DefaultMaxFaults + 2
		// The soak's fine-grained batching: more flushes means more
		// sink-side operations for the fault schedule to bite on.
		cfg.BatchSize = 1024
		cfg.BatchInterval = 5 * time.Millisecond
		log.Printf("serve: chaos on: mix %s, seed %d", *chaosMix, *chaosSeed)
	}

	d := daemon.New(cfg)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	d.Start(ctx)
	// Idle until the feeds end on their own or a signal/-duration cancels
	// them, then drain: final flush, queues closed, every queued batch
	// applied before the process reports its summary.
	if err := d.Wait(ctx); err != nil {
		log.Printf("serve: shutdown requested (%v), draining", err)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Drain(drainCtx); err != nil {
		log.Printf("serve: drain: %v", err)
	}
	log.Printf("serve: final RIB %d prefixes across %d shards", d.RIB().Len(), *shards)
	states := d.DeliveryStates()
	for _, s := range routerSinks {
		log.Printf("serve: router %s: %d FIB entries, %d batches, %d gaps",
			s.Name(), s.Len(), s.Batches(), s.Gaps())
		if *chaosOn {
			st := s.State()
			log.Printf("serve: router %s: chaos recovery: %d healed, %d unhealed, %d stale, breaker %s",
				s.Name(), st.Healed, len(st.Missing), st.Stale, states[s.Name()])
		}
	}
	if plan != nil {
		unhealed := 0
		for _, s := range routerSinks {
			unhealed += s.Unhealed()
		}
		log.Printf("serve: chaos: mix %s seed %d injected %v, %d unhealed gap ranges",
			*chaosMix, *chaosSeed, plan.Stats(), unhealed)
	}
}
