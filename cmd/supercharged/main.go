// Command supercharged runs the controller against real transports: BGP
// sessions to the configured peers and router, an OpenFlow listener for
// the switch, optional BFD over UDP, and an HTTP ops endpoint.
//
//	supercharged -config lab.json
//
// The serve subcommand instead runs the concurrent controller daemon
// under replayed load — synthetic tables or an MRT dump streamed by N
// peers into the sharded RIB, batched out to simulated routers — with
// live Prometheus metrics:
//
//	supercharged serve -peers 4 -prefixes 50000 -listen 127.0.0.1:9090
//	supercharged serve -mrt rib.mrt -rate 25000 -duration 30s
//
// With -chaos, serve additionally injects a seeded fault schedule
// (drops, stalls, session crashes, corrupt records) and turns on the
// resilient delivery policies (retries, circuit breakers, resync).
// The chaoscheck subcommand runs a bounded soak under the same fault
// plans and exits non-zero if any resilience invariant is violated:
//
//	supercharged serve -chaos -chaos-mix all -chaos-seed 7 -duration 30s
//	supercharged chaoscheck -mix crash -seed 42 -mrt rib.mrt -sample 2000
//
// Configuration (JSON):
//
//	{
//	  "local_as": 65001,
//	  "router_id": "203.0.113.253",
//	  "of_listen": "127.0.0.1:6633",
//	  "ops_listen": "127.0.0.1:8080",
//	  "switch_dpid": 83,
//	  "alloc_mode": "deterministic",
//	  "router": {"addr": "203.0.113.254", "as": 65000, "mac": "00:ff:00:00:00:01",
//	             "switch_port": 1, "dial": "127.0.0.1:1790"},
//	  "peers": [
//	    {"addr": "203.0.113.1", "as": 65002, "mac": "01:aa:00:00:00:01",
//	     "switch_port": 2, "weight": 200, "dial": "127.0.0.1:1791",
//	     "bfd_local": "127.0.0.1:3784", "bfd_peer": "127.0.0.1:3785"},
//	    {"addr": "198.51.100.2", "as": 65003, "mac": "02:bb:00:00:00:01",
//	     "switch_port": 3, "weight": 100, "dial": "127.0.0.1:1792"}
//	  ]
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"supercharged/internal/bfd"
	"supercharged/internal/core"
	"supercharged/internal/packet"
)

type peerJSON struct {
	Addr       string `json:"addr"`
	AS         uint32 `json:"as"`
	MAC        string `json:"mac"`
	SwitchPort uint16 `json:"switch_port"`
	Weight     uint32 `json:"weight"`
	Dial       string `json:"dial"`
	BFDLocal   string `json:"bfd_local,omitempty"`
	BFDPeer    string `json:"bfd_peer,omitempty"`
}

type routerJSON struct {
	Addr       string `json:"addr"`
	AS         uint32 `json:"as"`
	MAC        string `json:"mac"`
	SwitchPort uint16 `json:"switch_port"`
	Dial       string `json:"dial"`
}

type configJSON struct {
	LocalAS    uint32     `json:"local_as"`
	RouterID   string     `json:"router_id"`
	OFListen   string     `json:"of_listen"`
	OpsListen  string     `json:"ops_listen,omitempty"`
	SwitchDPID uint64     `json:"switch_dpid"`
	AllocMode  string     `json:"alloc_mode,omitempty"`
	Router     routerJSON `json:"router"`
	Peers      []peerJSON `json:"peers"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "chaoscheck" {
		chaoscheckMain(os.Args[2:])
		return
	}
	configPath := flag.String("config", "", "path to JSON configuration (required)")
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*configPath)
	if err != nil {
		log.Fatal(err)
	}
	var cj configJSON
	if err := json.Unmarshal(raw, &cj); err != nil {
		log.Fatalf("parse config: %v", err)
	}

	dialer := func(addr string) func() (net.Conn, error) {
		if addr == "" {
			return nil
		}
		return func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 10*time.Second) }
	}

	cfg := core.ControllerConfig{
		LocalAS:    cj.LocalAS,
		RouterID:   netip.MustParseAddr(cj.RouterID),
		SwitchDPID: cj.SwitchDPID,
		Logf:       log.Printf,
		Router: core.RouterConfig{
			Addr:       netip.MustParseAddr(cj.Router.Addr),
			AS:         cj.Router.AS,
			MAC:        packet.MustParseMAC(cj.Router.MAC),
			SwitchPort: cj.Router.SwitchPort,
			Dial:       dialer(cj.Router.Dial),
		},
	}
	if cj.AllocMode == "deterministic" {
		cfg.AllocMode = core.AllocDeterministic
	}

	type bfdWire struct {
		conn *net.UDPConn
		mux  *bfd.Mux
		peer string
		addr netip.Addr
	}
	var bfdWires []bfdWire
	for i, p := range cj.Peers {
		pc := core.PeerConfig{
			Addr:       netip.MustParseAddr(p.Addr),
			AS:         p.AS,
			MAC:        packet.MustParseMAC(p.MAC),
			SwitchPort: p.SwitchPort,
			Weight:     p.Weight,
			Dial:       dialer(p.Dial),
		}
		if p.BFDLocal != "" && p.BFDPeer != "" {
			laddr, err := net.ResolveUDPAddr("udp", p.BFDLocal)
			if err != nil {
				log.Fatal(err)
			}
			raddr, err := net.ResolveUDPAddr("udp", p.BFDPeer)
			if err != nil {
				log.Fatal(err)
			}
			conn, err := net.ListenUDP("udp", laddr)
			if err != nil {
				log.Fatal(err)
			}
			pc.BFD = &core.BFDConfig{
				LocalDiscr: uint32(i + 1),
				TxInterval: 30 * time.Millisecond,
				DetectMult: 3,
				Transport:  &bfd.UDPTransport{Conn: conn, Peer: raddr},
			}
			bfdWires = append(bfdWires, bfdWire{conn: conn, mux: bfd.NewMux(), peer: raddr.String(), addr: pc.Addr})
		}
		cfg.Peers = append(cfg.Peers, pc)
	}

	ctrl := core.NewController(cfg)
	ctrl.Start()
	defer ctrl.Stop()

	// Wire BFD demultiplexers after Start created the sessions.
	for _, w := range bfdWires {
		if sess, ok := ctrl.BFDSession(w.addr); ok {
			w.mux.Register(sess, w.peer)
			go w.mux.ServeUDP(w.conn)
		}
	}

	ofl, err := net.Listen("tcp", cj.OFListen)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := ctrl.ServeOpenFlow(ofl); err != nil {
			log.Printf("openflow listener: %v", err)
		}
	}()
	log.Printf("supercharged: OpenFlow on %s", cj.OFListen)

	if cj.OpsListen != "" {
		go func() {
			log.Printf("supercharged: ops endpoint on http://%s/status", cj.OpsListen)
			if err := http.ListenAndServe(cj.OpsListen, ctrl.OpsHandler()); err != nil {
				log.Printf("ops endpoint: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
}
