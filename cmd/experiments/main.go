// Command experiments regenerates EXPERIMENTS.md — the repo's committed,
// self-reproducing record of its own paper-reproduction numbers — from a
// real sweep of every registered scenario in both router modes:
//
//	experiments                    # rewrite EXPERIMENTS.md in place
//	experiments -o report.md       # write elsewhere
//	experiments -check             # regenerate and fail on drift (CI)
//	experiments -workers 8 -q      # parallelism / quiet
//
// The default sweep (full registry, both modes, per-scenario table
// sizes, seed 1) is deterministic: the same seed yields byte-identical
// output at any worker count, which is what lets CI regenerate the file
// and fail the build when the committed copy drifts from the code.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"supercharged/internal/sweep"
)

// baseCommand is the reproduction line embedded in the generated file;
// it must regenerate the committed EXPERIMENTS.md byte-for-byte, so any
// non-default flag that shapes the output is appended to it.
const baseCommand = "go run ./cmd/experiments"

func reproCommand(out string, seed int64) string {
	cmd := baseCommand
	if seed != 1 {
		cmd += fmt.Sprintf(" -seed %d", seed)
	}
	if out != "EXPERIMENTS.md" {
		cmd += " -o " + out
	}
	return cmd
}

func main() {
	out := flag.String("o", "EXPERIMENTS.md", "output path")
	check := flag.Bool("check", false, "regenerate and diff against -o instead of writing; exit 1 on drift")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "RNG seed")
	quiet := flag.Bool("q", false, "suppress per-run progress output")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "experiments: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	spec := sweep.Spec{Seeds: []int64{*seed}}
	opts := sweep.Options{Workers: *workers}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	command := reproCommand(*out, *seed)
	agg, err := sweep.Run(spec, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if agg.Failed > 0 {
		// A partially failed sweep still renders (failures are reported in
		// the document), but is not a publishable record: refuse to
		// overwrite the committed file with it.
		fmt.Fprintf(os.Stderr, "experiments: %d of %d runs failed; not writing %s\n",
			agg.Failed, agg.Units, *out)
		os.Exit(1)
	}
	doc := agg.Markdown(sweep.MarkdownOptions{Command: command})

	if *check {
		committed, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -check: %v (regenerate with `%s`)\n", err, command)
			os.Exit(1)
		}
		if !bytes.Equal(committed, doc) {
			fmt.Fprintf(os.Stderr,
				"experiments: %s is stale: regenerate with `%s` and commit the result\n",
				*out, command)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: %s is up to date\n", *out)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote %s (%d runs, %d scenarios)\n",
		*out, agg.Units, len(agg.Scenarios))
}
