// Command experiments regenerates EXPERIMENTS.md — the repo's committed,
// self-reproducing record of its own paper-reproduction numbers — from a
// real sweep of every registered scenario in both router modes at
// multiple seeds:
//
//	experiments                    # rewrite EXPERIMENTS.md in place
//	experiments -o report.md       # write elsewhere
//	experiments -check             # regenerate, diff, fail on drift (CI)
//	experiments -seeds 5           # seeds 1..5 (a list like 2,7 also works)
//	experiments -workers 8 -q      # parallelism / quiet
//
// The default sweep (full registry, both modes, per-scenario table
// sizes, seeds 1..3) is deterministic: the same seeds yield
// byte-identical output at any worker count and any result-store state,
// which is what lets CI regenerate the file and fail the build when the
// committed copy drifts from the code. On drift, -check prints the
// unified diff of the stale sections so the CI log says what moved, not
// just that something did. Units unchanged since the last run are served
// from the result store (-store), so re-generation after a small edit
// only re-executes what the edit invalidated.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"supercharged/internal/results"
	"supercharged/internal/sweep"
	"supercharged/internal/textdiff"
)

// baseCommand is the reproduction line embedded in the generated file;
// it must regenerate the committed EXPERIMENTS.md byte-for-byte, so any
// non-default flag that shapes the output is appended to it.
const baseCommand = "go run ./cmd/experiments"

// defaultSeeds is the committed file's seed axis: three seeds keep the
// spread columns honest (median [min–max] is meaningful) while the
// docs-freshness job stays cheap — and with the result store warm, free.
const defaultSeeds = "1,2,3"

func reproCommand(out, seeds string) string {
	cmd := baseCommand
	if seeds != defaultSeeds {
		cmd += " -seeds " + seeds
	}
	if out != "EXPERIMENTS.md" {
		cmd += " -o " + out
	}
	return cmd
}

func main() {
	out := flag.String("o", "EXPERIMENTS.md", "output path")
	check := flag.Bool("check", false, "regenerate and diff against -o instead of writing; exit 1 on drift")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seeds := flag.String("seeds", defaultSeeds, "seed count, or comma-separated explicit seeds")
	storeDir := flag.String("store", ".sweep-cache", "result-store directory for incremental re-sweeps (empty = disabled)")
	quiet := flag.Bool("q", false, "suppress per-run progress output")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "experiments: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	seedList, err := sweep.ParseSeeds(*seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -seeds: %v\n", err)
		os.Exit(2)
	}
	spec := sweep.Spec{Seeds: seedList}
	opts := sweep.Options{Workers: *workers}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *storeDir != "" {
		store, err := results.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		opts.Store = store
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	command := reproCommand(*out, *seeds)
	agg, err := sweep.Run(ctx, spec, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	if agg.Failed > 0 {
		// A partially failed sweep still renders (failures are reported in
		// the document), but is not a publishable record: refuse to
		// overwrite the committed file with it.
		fmt.Fprintf(os.Stderr, "experiments: %d of %d runs failed; not writing %s\n",
			agg.Failed, agg.Units, *out)
		os.Exit(1)
	}
	doc := agg.Markdown(sweep.MarkdownOptions{Command: command})

	if *check {
		committed, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -check: %v (regenerate with `%s`)\n", err, command)
			os.Exit(1)
		}
		if !bytes.Equal(committed, doc) {
			fmt.Fprintf(os.Stderr,
				"experiments: %s is stale: regenerate with `%s` and commit the result\n",
				*out, command)
			// The diff is the actionable part of a CI failure: show which
			// sections drifted instead of leaving the log at "exit 1".
			fmt.Fprint(os.Stderr, textdiff.Unified(
				*out+" (committed)", *out+" (regenerated)", committed, doc, 3))
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: %s is up to date\n", *out)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "experiments: wrote %s (%d runs, %d scenarios)\n",
		*out, agg.Units, len(agg.Scenarios))
}
