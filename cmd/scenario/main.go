// Command scenario lists, describes and runs declarative failure
// scenarios over the convergence lab (internal/scenario), and sweeps the
// whole registry across a parallel worker pool (internal/sweep):
//
//	scenario list                          # registered scenarios
//	scenario describe flap-storm           # topology + timeline of one
//	scenario run paper-fig5 --mode both    # execute and report JSON
//	scenario run double-failure --prefixes 20000 --format csv
//	scenario sweep --workers 8             # every scenario × both modes
//	scenario sweep paper-fig5 flap-storm --seeds 1,2,3 --json
//
// `run` writes the full report to stdout (JSON by default; --format
// csv|table for the others) and, for multi-size two-mode runs, a
// flat-vs-linear headline table to stderr. `sweep` streams one progress
// line per completed run to stderr and writes the aggregated comparison
// (text table by default, --json for the full aggregate, --md for the
// EXPERIMENTS.md rendering) to stdout; run failures are reported in the
// aggregate, not fatal.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"supercharged/internal/results"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
	"supercharged/internal/sweep"
	"supercharged/internal/telemetry"
	"supercharged/internal/textdiff"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "describe":
		cmdDescribe(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "sweep":
		cmdSweep(os.Args[2:])
	case "fuzz":
		cmdFuzz(os.Args[2:])
	case "docs":
		cmdDocs(os.Args[2:])
	case "results":
		cmdResults(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  scenario list                       list registered scenarios
  scenario describe <name>            show a scenario's topology and timeline
  scenario run <name> [flags]         execute a scenario and report results
  scenario sweep [names...] [flags]   run many scenarios across a worker pool
  scenario fuzz [flags]               hunt for convergence regressions with
                                      random timelines from a seeded grammar
  scenario docs [flags]               regenerate the builtin catalogue section
                                      of docs/scenarios.md from the registry
  scenario results stats [flags]      result-store footprint: entries, bytes,
                                      age histogram
  scenario results evict [flags]      prune the result store by age and size

run flags:
  --mode both|standalone|supercharged   router modes to run (default both)
  --prefixes N                          table size (overrides spec default/sweep)
  --flows N                             probed flows per run (default 100)
  --seed N                              RNG seed (default 1; same seed, same report)
  --table FILE                          MRT TABLE_DUMP_V2 dump (plain or .gz) to
                                        replay instead of the synthetic feed
  --format json|csv|table               report format on stdout (default json)
  --trace FILE                          write the runs' virtual-time spans as
                                        Chrome trace-event JSON (open in
                                        Perfetto / chrome://tracing)
  --trace-jsonl FILE                    write the raw span stream as JSONL
  --q                                   suppress progress output on stderr

sweep flags:
  --workers N                           worker pool size (default GOMAXPROCS)
  --mode both|standalone|supercharged   router modes (default both)
  --sizes N,N,...                       table sizes (default per-scenario)
  --tier s|m|l|xl                       named size tier instead of --sizes
                                        (xl = 100k and 1M prefixes)
  --seeds N | N,N,...                   a bare integer is a seed COUNT
                                        (5 = seeds 1..5); a comma list
                                        names explicit seeds (default 1)
  --flows N                             probed flows per run (default 100)
  --store DIR                           result store for incremental
                                        re-sweeps (default .sweep-cache;
                                        "" disables caching)
  --budget D                            wall-clock budget, e.g. 30s
                                        (0 = none)
  --listen ADDR                         serve /metrics, /runs and /debug/pprof
                                        on ADDR (e.g. 127.0.0.1:9475) during
                                        the sweep
  --linger D                            keep the --listen endpoint up D after
                                        the sweep finishes (^C stops early)
  --trace-dir DIR                       write each executed unit's virtual-time
                                        trace into DIR (<key>.trace.jsonl plus
                                        Perfetto-openable <key>.trace.json;
                                        cache hits produce no trace)
  --json                                emit the full aggregate as JSON
  --md                                  emit the EXPERIMENTS.md rendering
  --q                                   suppress per-run progress on stderr

fuzz flags:
  --seed N                              grammar seed (default 1; the whole
                                        session — specs, verdicts, shrinks —
                                        reproduces byte-for-byte from it)
  --runs N                              timelines to generate (default 20)
  --prefixes N                          table size per run (default 2000)
  --flows N                             probed flows per run (default 50)
  --max-peers N / --max-events N        grammar bounds (defaults 5 / 6)
  --slack F                             allowed supercharged/standalone
                                        worst-blackout ratio (default 1.5)
  --axes A,A,...                        grammar axes to enable (default all):
                                        group-size, detection, windows,
                                        deployment, cost, replicas; the axis
                                        list is part of a finding's
                                        reproduction contract with the seed
  --no-shrink                           report findings unminimized
  --budget D                            wall-clock cap, e.g. 30s (0 = none)
  --json                                emit the session result as JSON
  --q                                   suppress the per-run timeline log

docs flags:
  --o FILE                              docs file to update (default
                                        docs/scenarios.md)
  --check                               verify instead of write; exit 1 and
                                        print a diff on drift (CI)

results flags (stats and evict):
  --store DIR                           result-store directory
                                        (default .sweep-cache)
  --json                                emit JSON instead of the table
evict only:
  --max-age D                           remove entries older than D
                                        (Go duration, e.g. 168h; 0 = no limit)
  --max-bytes N                         remove oldest entries until the store
                                        fits in N bytes (0 = no limit)
  --dry-run                             report what would be removed, remove
                                        nothing

With no names, sweep covers every registered scenario. Worker count and
store warmth only change wall-clock time: results are deterministic per
seed, and with several seeds every cell reports median [min-max] spread.
fuzz exits 1 if any finding survives; docs --check exits 1 on drift.
`)
}

func cmdList() {
	for _, s := range scenario.List() {
		fmt.Printf("%-22s %s\n", s.Name, s.Description)
	}
}

func cmdDescribe(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: scenario describe <name>")
		os.Exit(2)
	}
	s, ok := scenario.Lookup(args[0])
	if !ok {
		fmt.Fprintf(os.Stderr, "scenario: unknown scenario %q (have: %v)\n", args[0], scenario.Names())
		os.Exit(1)
	}
	fmt.Printf("%s\n\n%s\n\n", s.Name, s.Description)
	fmt.Println("peers:")
	for i, p := range s.Peers {
		role := "backup"
		if i == 0 {
			role = "primary"
		}
		size := "full table"
		if p.Prefixes > 0 {
			size = fmt.Sprintf("%d prefixes", p.Prefixes)
			if p.Offset > 0 {
				size += fmt.Sprintf(" from index %d (wrapping)", p.Offset)
			}
		}
		fmt.Printf("  %-6s %-8s %s\n", p.Name, role, size)
	}
	fmt.Println("timeline:")
	for _, e := range s.Events {
		line := fmt.Sprintf("  t=%-8v %-18s", e.At, e.Kind)
		if e.Peer != "" {
			line += " peer=" + e.Peer
		}
		if len(e.Peers) > 0 {
			line += " peers=" + strings.Join(e.Peers, "+")
		}
		if e.Hold > 0 {
			line += fmt.Sprintf(" hold=%v", e.Hold)
		}
		if e.Fraction > 0 {
			line += fmt.Sprintf(" fraction=%g", e.Fraction)
		}
		if e.Rate > 0 {
			line += fmt.Sprintf(" rate=%d/s", e.Rate)
		}
		if e.Graceful {
			line += " graceful"
		}
		if e.Detection != "" {
			line += fmt.Sprintf(" detection=%s", e.Detection)
		}
		fmt.Println(line)
	}
	if len(s.PrefixSweep) > 0 {
		fmt.Printf("prefix sweep: %v\n", s.PrefixSweep)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	mode := fs.String("mode", "both", "both|standalone|supercharged")
	prefixes := fs.Int("prefixes", 0, "table size (0 = spec default or sweep)")
	flows := fs.Int("flows", 0, "probed flows per run (0 = default 100)")
	seed := fs.Int64("seed", 1, "RNG seed")
	table := fs.String("table", "", "MRT dump to replay instead of the synthetic feed")
	format := fs.String("format", "json", "json|csv|table")
	traceOut := fs.String("trace", "", "write the runs' virtual-time spans as Chrome trace-event JSON (Perfetto-openable)")
	traceJSONL := fs.String("trace-jsonl", "", "write the runs' virtual-time spans as JSONL")
	quiet := fs.Bool("q", false, "suppress progress output")
	// Accept both `run <name> --flags` and `run --flags <name>`.
	var name string
	rest := args
	if len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
		name, rest = rest[0], rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		os.Exit(2)
	}
	if name == "" && fs.NArg() > 0 {
		name = fs.Arg(0)
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			os.Exit(2)
		}
	}
	if name == "" {
		fmt.Fprintln(os.Stderr, "usage: scenario run <name> [flags]")
		os.Exit(2)
	}

	runner := scenario.Runner{Prefixes: *prefixes, Flows: *flows, Seed: *seed, Table: *table}
	switch *mode {
	case "both", "":
	case "standalone":
		runner.Modes = []sim.Mode{sim.Standalone}
	case "supercharged":
		runner.Modes = []sim.Mode{sim.Supercharged}
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if !*quiet {
		runner.Progress = os.Stderr
	}
	if *traceOut != "" || *traceJSONL != "" {
		runner.Trace = telemetry.NewTrace()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	t0 := time.Now()
	rep, err := runner.RunNamed(ctx, name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // package errors already carry the scenario: prefix
		os.Exit(1)
	}
	if tr := runner.Trace; tr != nil {
		exports := []struct {
			path  string
			write func(io.Writer) error
		}{
			{*traceJSONL, tr.WriteJSONL},
			{*traceOut, tr.WriteChromeTrace},
		}
		for _, e := range exports {
			if e.path == "" {
				continue
			}
			if err := writeTraceFile(e.path, e.write); err != nil {
				fmt.Fprintf(os.Stderr, "scenario: trace: %v\n", err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "scenario: wrote %s (%d spans)\n", e.path, tr.Len())
			}
		}
	}

	switch *format {
	case "json":
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
	case "csv":
		if err := rep.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
	case "table":
		fmt.Print(rep.RenderTable())
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown format %q\n", *format)
		os.Exit(2)
	}
	if !*quiet {
		if hl := rep.Headline(); hl != "" && len(rep.Runs) > 1 {
			fmt.Fprintf(os.Stderr, "\nworst-case data-plane convergence by table size:\n%s", hl)
		}
		fmt.Fprintf(os.Stderr, "(%d runs in %v)\n", len(rep.Runs), time.Since(t0).Round(time.Millisecond))
	}
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	mode := fs.String("mode", "both", "both|standalone|supercharged")
	sizes := fs.String("sizes", "", "comma-separated table sizes (default per-scenario)")
	tier := fs.String("tier", "", "named size tier (s|m|l|xl) instead of --sizes")
	seeds := fs.String("seeds", "", "seed count, or comma-separated explicit seeds (default 1)")
	flows := fs.Int("flows", 0, "probed flows per run (0 = default 100)")
	storeDir := fs.String("store", ".sweep-cache", "result-store directory (empty = no caching)")
	budget := fs.Duration("budget", 0, "wall-clock budget for the sweep (0 = none)")
	listen := fs.String("listen", "", "serve /metrics, /runs and /debug/pprof on this address during the sweep")
	linger := fs.Duration("linger", 0, "keep the --listen endpoint up this long after the sweep (^C stops early)")
	traceDir := fs.String("trace-dir", "", "write per-executed-unit virtual-time traces (.trace.jsonl + .trace.json) here")
	asJSON := fs.Bool("json", false, "emit the full aggregate as JSON")
	asMD := fs.Bool("md", false, "emit the EXPERIMENTS.md rendering")
	quiet := fs.Bool("q", false, "suppress per-run progress output")
	// Accept names and flags in any interleaving (`sweep a --workers 2 b
	// --json`): peel leading non-flag args as names, parse flags, repeat
	// on whatever the flag parser left over. A bare "-" counts as a name
	// (flag.Parse would hand it back untouched and loop forever); with
	// that, each pass consumes at least one argument, so this terminates.
	var names []string
	rest := args
	for len(rest) > 0 {
		for len(rest) > 0 && (rest[0] == "-" || len(rest[0]) == 0 || rest[0][0] != '-') {
			names, rest = append(names, rest[0]), rest[1:]
		}
		if len(rest) == 0 {
			break
		}
		if err := fs.Parse(rest); err != nil {
			os.Exit(2)
		}
		rest = fs.Args()
	}

	spec := sweep.Spec{Scenarios: names, Flows: *flows}
	switch *mode {
	case "both", "":
	case "standalone":
		spec.Modes = []sim.Mode{sim.Standalone}
	case "supercharged":
		spec.Modes = []sim.Mode{sim.Supercharged}
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var err error
	if spec.Sizes, err = parseIntList(*sizes); err != nil {
		fmt.Fprintf(os.Stderr, "scenario: --sizes: %v\n", err)
		os.Exit(2)
	}
	spec.Tier = *tier
	if spec.Seeds, err = sweep.ParseSeeds(*seeds); err != nil {
		fmt.Fprintf(os.Stderr, "scenario: --seeds: %v\n", err)
		os.Exit(2)
	}

	opts := sweep.Options{Workers: *workers, Budget: *budget, TraceDir: *traceDir}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *storeDir != "" {
		store, err := results.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: --store: %v\n", err)
			os.Exit(1)
		}
		opts.Store = store
	}
	var srv *telemetry.Server
	if *listen != "" {
		opts.Telemetry = telemetry.NewRegistry()
		opts.Runs = telemetry.NewRunTracker(0)
		srv, err = telemetry.Serve(*listen, opts.Telemetry, opts.Runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: --listen: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "scenario sweep: serving /metrics, /runs, /debug/pprof on http://%s\n", srv.Addr)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	agg, err := sweep.Run(ctx, spec, opts)
	if err != nil {
		// A cancelled or over-budget sweep still rendered a partial
		// aggregate; report the interruption and fall through to print it.
		fmt.Fprintln(os.Stderr, err)
		if agg == nil {
			os.Exit(1)
		}
	}
	switch {
	case *asJSON:
		out, err := agg.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
	case *asMD:
		os.Stdout.Write(agg.Markdown(sweep.MarkdownOptions{}))
	default:
		fmt.Print(agg.RenderTable())
	}
	if srv != nil && *linger > 0 {
		fmt.Fprintf(os.Stderr, "scenario sweep: endpoint up for %v more on http://%s (^C to stop)\n", *linger, srv.Addr)
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
		}
	}
	if agg.Failed > 0 {
		os.Exit(1)
	}
}

// writeTraceFile creates path and streams one trace export into it.
func writeTraceFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdFuzz(args []string) {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "grammar seed (same seed, same session)")
	runs := fs.Int("runs", 20, "timelines to generate")
	prefixes := fs.Int("prefixes", 0, "table size per run (0 = 2000)")
	flows := fs.Int("flows", 0, "probed flows per run (0 = 50)")
	maxPeers := fs.Int("max-peers", 0, "max generated peers (0 = 5)")
	maxEvents := fs.Int("max-events", 0, "max generated events (0 = 6)")
	slack := fs.Float64("slack", 0, "allowed supercharged/standalone ratio (0 = 1.5)")
	axes := fs.String("axes", "", "comma-separated grammar axes to enable (empty = all; see usage)")
	noShrink := fs.Bool("no-shrink", false, "report findings unminimized")
	budget := fs.Duration("budget", 0, "wall-clock budget (0 = none)")
	asJSON := fs.Bool("json", false, "emit the session result as JSON")
	quiet := fs.Bool("q", false, "suppress the per-run timeline log")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "scenario fuzz: unexpected arguments %v\n", fs.Args())
		os.Exit(2)
	}

	opts := scenario.FuzzOptions{
		Seed: *seed, Runs: *runs, Prefixes: *prefixes, Flows: *flows,
		MaxPeers: *maxPeers, MaxEvents: *maxEvents, Slack: *slack,
		NoShrink: *noShrink,
	}
	if *axes != "" {
		for _, a := range strings.Split(*axes, ",") {
			if a = strings.TrimSpace(a); a != "" {
				opts.Axes = append(opts.Axes, a)
			}
		}
		if err := scenario.ValidateAxes(opts.Axes); err != nil {
			fmt.Fprintf(os.Stderr, "scenario fuzz: %v\n", err)
			os.Exit(2)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *budget)
		defer cancel()
	}

	// The per-run log goes to stdout: it contains no wall-clock or host
	// data, so `scenario fuzz -seed N` reproduces it byte-for-byte — the
	// log IS the session transcript.
	var progress io.Writer = os.Stdout
	if *quiet || *asJSON {
		progress = nil
		if !*quiet {
			progress = os.Stderr
		}
	}
	res, err := scenario.Fuzz(ctx, opts, progress)
	if err != nil {
		// A budget expiry or ^C ends the session early but is not itself a
		// failure: report the interruption and fall through to the partial
		// session's findings (the exit code stays "findings found?").
		fmt.Fprintf(os.Stderr, "scenario fuzz: %v\n", err)
		if res == nil || !(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			os.Exit(1)
		}
	}
	if *asJSON {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario fuzz: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
	}
	if n := len(res.Findings); n > 0 {
		fmt.Fprintf(os.Stderr, "scenario fuzz: %d finding(s) in %d runs (seed %d)\n",
			n, res.Runs, res.Seed)
		if !*asJSON {
			for _, f := range res.Findings {
				repro, err := json.Marshal(minimalFinding(f))
				if err != nil {
					fmt.Fprintf(os.Stderr, "scenario fuzz: %v\n", err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "  run %d: %s\n  spec: %s\n", f.Index, f.Reason, repro)
			}
		}
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "scenario fuzz: no findings in %d runs (seed %d)\n", res.Runs, res.Seed)
	}
}

// minimalFinding picks the shrunk spec when available for the repro line.
func minimalFinding(f scenario.FuzzFinding) scenario.Spec {
	if f.Shrunk != nil {
		return *f.Shrunk
	}
	return f.Spec
}

func cmdDocs(args []string) {
	fs := flag.NewFlagSet("docs", flag.ExitOnError)
	out := fs.String("o", "docs/scenarios.md", "docs file to update")
	check := fs.Bool("check", false, "verify instead of write; exit 1 and print a diff on drift")
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "scenario docs: unexpected arguments %v\n", fs.Args())
		os.Exit(2)
	}
	committed, err := os.ReadFile(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario docs: %v\n", err)
		os.Exit(1)
	}
	spliced, err := scenario.SpliceDocs(committed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario docs: %v\n", err)
		os.Exit(1)
	}
	if *check {
		if !bytes.Equal(committed, spliced) {
			fmt.Fprintf(os.Stderr,
				"scenario docs: %s is stale: regenerate with `go run ./cmd/scenario docs` and commit the result\n", *out)
			fmt.Fprint(os.Stderr, textdiff.Unified(
				*out+" (committed)", *out+" (regenerated)", committed, spliced, 3))
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "scenario docs: %s is up to date\n", *out)
		return
	}
	if err := os.WriteFile(*out, spliced, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "scenario docs: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "scenario docs: wrote %s (%d builtins)\n", *out, len(scenario.List()))
}

// cmdResults is the store-hygiene surface: `results stats` reports the
// store's footprint, `results evict` prunes it by age and size. The
// store only ever grows otherwise — every code change orphans the old
// model version's entries in place.
func cmdResults(args []string) {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "usage: scenario results stats|evict [flags]")
		os.Exit(2)
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("results "+sub, flag.ExitOnError)
	storeDir := fs.String("store", ".sweep-cache", "result-store directory")
	asJSON := fs.Bool("json", false, "emit JSON instead of the table")
	maxAge := fs.Duration("max-age", 0, "evict: remove entries older than this (0 = no age limit)")
	maxBytes := fs.Int64("max-bytes", 0, "evict: prune oldest entries until the store fits (0 = no size limit)")
	dryRun := fs.Bool("dry-run", false, "evict: report only, remove nothing")
	if err := fs.Parse(rest); err != nil {
		os.Exit(2)
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "scenario results %s: unexpected arguments %v\n", sub, fs.Args())
		os.Exit(2)
	}
	store, err := results.Open(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario results: %v\n", err)
		os.Exit(1)
	}
	switch sub {
	case "stats":
		st, err := store.Stats(time.Now())
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario results: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			out, err := json.MarshalIndent(st, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "scenario results: %v\n", err)
				os.Exit(1)
			}
			os.Stdout.Write(append(out, '\n'))
			return
		}
		fmt.Printf("store    %s\n", store.Dir())
		fmt.Printf("entries  %d\n", st.Entries)
		fmt.Printf("bytes    %d (%.1f MiB)\n", st.Bytes, float64(st.Bytes)/(1<<20))
		if !st.Oldest.IsZero() {
			fmt.Printf("oldest   %s\n", st.Oldest.Format(time.RFC3339))
			fmt.Printf("newest   %s\n", st.Newest.Format(time.RFC3339))
		}
		fmt.Println("age histogram:")
		for _, b := range st.Ages {
			fmt.Printf("  <=%-6s %7d entries %12d bytes\n", b.Label, b.Entries, b.Bytes)
		}
	case "evict":
		if *maxAge <= 0 && *maxBytes <= 0 {
			fmt.Fprintln(os.Stderr, "scenario results evict: nothing to do (set --max-age and/or --max-bytes)")
			os.Exit(2)
		}
		res, err := store.Evict(results.EvictOptions{MaxAge: *maxAge, MaxBytes: *maxBytes, DryRun: *dryRun})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario results: %v\n", err)
			os.Exit(1)
		}
		if *asJSON {
			out, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "scenario results: %v\n", err)
				os.Exit(1)
			}
			os.Stdout.Write(append(out, '\n'))
			return
		}
		verb := "removed"
		if *dryRun {
			verb = "would remove"
		}
		fmt.Printf("%s %d entries (%d bytes); kept %d entries (%d bytes)\n",
			verb, res.Removed, res.RemovedBytes, res.Kept, res.KeptBytes)
	default:
		fmt.Fprintf(os.Stderr, "scenario results: unknown subcommand %q (want stats or evict)\n", sub)
		os.Exit(2)
	}
}

func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
