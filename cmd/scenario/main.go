// Command scenario lists, describes and runs declarative failure
// scenarios over the convergence lab (internal/scenario), and sweeps the
// whole registry across a parallel worker pool (internal/sweep):
//
//	scenario list                          # registered scenarios
//	scenario describe flap-storm           # topology + timeline of one
//	scenario run paper-fig5 --mode both    # execute and report JSON
//	scenario run double-failure --prefixes 20000 --format csv
//	scenario sweep --workers 8             # every scenario × both modes
//	scenario sweep paper-fig5 flap-storm --seeds 1,2,3 --json
//
// `run` writes the full report to stdout (JSON by default; --format
// csv|table for the others) and, for multi-size two-mode runs, a
// flat-vs-linear headline table to stderr. `sweep` streams one progress
// line per completed run to stderr and writes the aggregated comparison
// (text table by default, --json for the full aggregate, --md for the
// EXPERIMENTS.md rendering) to stdout; run failures are reported in the
// aggregate, not fatal.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"supercharged/internal/results"
	"supercharged/internal/scenario"
	"supercharged/internal/sim"
	"supercharged/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "describe":
		cmdDescribe(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "sweep":
		cmdSweep(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  scenario list                       list registered scenarios
  scenario describe <name>            show a scenario's topology and timeline
  scenario run <name> [flags]         execute a scenario and report results
  scenario sweep [names...] [flags]   run many scenarios across a worker pool

run flags:
  --mode both|standalone|supercharged   router modes to run (default both)
  --prefixes N                          table size (overrides spec default/sweep)
  --flows N                             probed flows per run (default 100)
  --seed N                              RNG seed (default 1; same seed, same report)
  --format json|csv|table               report format on stdout (default json)
  --q                                   suppress progress output on stderr

sweep flags:
  --workers N                           worker pool size (default GOMAXPROCS)
  --mode both|standalone|supercharged   router modes (default both)
  --sizes N,N,...                       table sizes (default per-scenario)
  --seeds N | N,N,...                   a bare integer is a seed COUNT
                                        (5 = seeds 1..5); a comma list
                                        names explicit seeds (default 1)
  --flows N                             probed flows per run (default 100)
  --store DIR                           result store for incremental
                                        re-sweeps (default .sweep-cache;
                                        "" disables caching)
  --budget D                            wall-clock budget, e.g. 30s
                                        (0 = none)
  --json                                emit the full aggregate as JSON
  --md                                  emit the EXPERIMENTS.md rendering
  --q                                   suppress per-run progress on stderr

With no names, sweep covers every registered scenario. Worker count and
store warmth only change wall-clock time: results are deterministic per
seed, and with several seeds every cell reports median [min-max] spread.
`)
}

func cmdList() {
	for _, s := range scenario.List() {
		fmt.Printf("%-22s %s\n", s.Name, s.Description)
	}
}

func cmdDescribe(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: scenario describe <name>")
		os.Exit(2)
	}
	s, ok := scenario.Lookup(args[0])
	if !ok {
		fmt.Fprintf(os.Stderr, "scenario: unknown scenario %q (have: %v)\n", args[0], scenario.Names())
		os.Exit(1)
	}
	fmt.Printf("%s\n\n%s\n\n", s.Name, s.Description)
	fmt.Println("peers:")
	for i, p := range s.Peers {
		role := "backup"
		if i == 0 {
			role = "primary"
		}
		size := "full table"
		if p.Prefixes > 0 {
			size = fmt.Sprintf("%d prefixes", p.Prefixes)
		}
		fmt.Printf("  %-6s %-8s %s\n", p.Name, role, size)
	}
	fmt.Println("timeline:")
	for _, e := range s.Events {
		line := fmt.Sprintf("  t=%-8v %-18s", e.At, e.Kind)
		if e.Peer != "" {
			line += " peer=" + e.Peer
		}
		if e.Hold > 0 {
			line += fmt.Sprintf(" hold=%v", e.Hold)
		}
		if e.Fraction > 0 {
			line += fmt.Sprintf(" fraction=%g", e.Fraction)
		}
		if e.Detection != "" {
			line += fmt.Sprintf(" detection=%s", e.Detection)
		}
		fmt.Println(line)
	}
	if len(s.PrefixSweep) > 0 {
		fmt.Printf("prefix sweep: %v\n", s.PrefixSweep)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	mode := fs.String("mode", "both", "both|standalone|supercharged")
	prefixes := fs.Int("prefixes", 0, "table size (0 = spec default or sweep)")
	flows := fs.Int("flows", 0, "probed flows per run (0 = default 100)")
	seed := fs.Int64("seed", 1, "RNG seed")
	format := fs.String("format", "json", "json|csv|table")
	quiet := fs.Bool("q", false, "suppress progress output")
	// Accept both `run <name> --flags` and `run --flags <name>`.
	var name string
	rest := args
	if len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
		name, rest = rest[0], rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		os.Exit(2)
	}
	if name == "" && fs.NArg() > 0 {
		name = fs.Arg(0)
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			os.Exit(2)
		}
	}
	if name == "" {
		fmt.Fprintln(os.Stderr, "usage: scenario run <name> [flags]")
		os.Exit(2)
	}

	opts := scenario.Options{Prefixes: *prefixes, Flows: *flows, Seed: *seed}
	switch *mode {
	case "both", "":
	case "standalone":
		opts.Modes = []sim.Mode{sim.Standalone}
	case "supercharged":
		opts.Modes = []sim.Mode{sim.Supercharged}
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	t0 := time.Now()
	rep, err := scenario.RunNamed(ctx, name, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // package errors already carry the scenario: prefix
		os.Exit(1)
	}

	switch *format {
	case "json":
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
	case "csv":
		if err := rep.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
	case "table":
		fmt.Print(rep.RenderTable())
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown format %q\n", *format)
		os.Exit(2)
	}
	if !*quiet {
		if hl := rep.Headline(); hl != "" && len(rep.Runs) > 1 {
			fmt.Fprintf(os.Stderr, "\nworst-case data-plane convergence by table size:\n%s", hl)
		}
		fmt.Fprintf(os.Stderr, "(%d runs in %v)\n", len(rep.Runs), time.Since(t0).Round(time.Millisecond))
	}
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	mode := fs.String("mode", "both", "both|standalone|supercharged")
	sizes := fs.String("sizes", "", "comma-separated table sizes (default per-scenario)")
	seeds := fs.String("seeds", "", "seed count, or comma-separated explicit seeds (default 1)")
	flows := fs.Int("flows", 0, "probed flows per run (0 = default 100)")
	storeDir := fs.String("store", ".sweep-cache", "result-store directory (empty = no caching)")
	budget := fs.Duration("budget", 0, "wall-clock budget for the sweep (0 = none)")
	asJSON := fs.Bool("json", false, "emit the full aggregate as JSON")
	asMD := fs.Bool("md", false, "emit the EXPERIMENTS.md rendering")
	quiet := fs.Bool("q", false, "suppress per-run progress output")
	// Accept names and flags in any interleaving (`sweep a --workers 2 b
	// --json`): peel leading non-flag args as names, parse flags, repeat
	// on whatever the flag parser left over. A bare "-" counts as a name
	// (flag.Parse would hand it back untouched and loop forever); with
	// that, each pass consumes at least one argument, so this terminates.
	var names []string
	rest := args
	for len(rest) > 0 {
		for len(rest) > 0 && (rest[0] == "-" || len(rest[0]) == 0 || rest[0][0] != '-') {
			names, rest = append(names, rest[0]), rest[1:]
		}
		if len(rest) == 0 {
			break
		}
		if err := fs.Parse(rest); err != nil {
			os.Exit(2)
		}
		rest = fs.Args()
	}

	spec := sweep.Spec{Scenarios: names, Flows: *flows}
	switch *mode {
	case "both", "":
	case "standalone":
		spec.Modes = []sim.Mode{sim.Standalone}
	case "supercharged":
		spec.Modes = []sim.Mode{sim.Supercharged}
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var err error
	if spec.Sizes, err = parseIntList(*sizes); err != nil {
		fmt.Fprintf(os.Stderr, "scenario: --sizes: %v\n", err)
		os.Exit(2)
	}
	if spec.Seeds, err = sweep.ParseSeeds(*seeds); err != nil {
		fmt.Fprintf(os.Stderr, "scenario: --seeds: %v\n", err)
		os.Exit(2)
	}

	opts := sweep.Options{Workers: *workers, Budget: *budget}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	if *storeDir != "" {
		store, err := results.Open(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: --store: %v\n", err)
			os.Exit(1)
		}
		opts.Store = store
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	agg, err := sweep.Run(ctx, spec, opts)
	if err != nil {
		// A cancelled or over-budget sweep still rendered a partial
		// aggregate; report the interruption and fall through to print it.
		fmt.Fprintln(os.Stderr, err)
		if agg == nil {
			os.Exit(1)
		}
	}
	switch {
	case *asJSON:
		out, err := agg.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
	case *asMD:
		os.Stdout.Write(agg.Markdown(sweep.MarkdownOptions{}))
	default:
		fmt.Print(agg.RenderTable())
	}
	if agg.Failed > 0 {
		os.Exit(1)
	}
}

func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
