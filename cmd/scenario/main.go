// Command scenario lists, describes and runs declarative failure
// scenarios over the convergence lab (internal/scenario):
//
//	scenario list                          # registered scenarios
//	scenario describe flap-storm           # topology + timeline of one
//	scenario run paper-fig5 --mode both    # execute and report JSON
//	scenario run double-failure --prefixes 20000 --format csv
//
// `run` writes the full report to stdout (JSON by default; --format
// csv|table for the others) and, for multi-size two-mode runs, a
// flat-vs-linear headline table to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"supercharged/internal/scenario"
	"supercharged/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		cmdList()
	case "describe":
		cmdDescribe(os.Args[2:])
	case "run":
		cmdRun(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown command %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  scenario list                       list registered scenarios
  scenario describe <name>            show a scenario's topology and timeline
  scenario run <name> [flags]         execute a scenario and report results

run flags:
  --mode both|standalone|supercharged   router modes to run (default both)
  --prefixes N                          table size (overrides spec default/sweep)
  --flows N                             probed flows per run (default 100)
  --seed N                              RNG seed (default 1; same seed, same report)
  --format json|csv|table               report format on stdout (default json)
  --q                                   suppress progress output on stderr
`)
}

func cmdList() {
	for _, s := range scenario.List() {
		fmt.Printf("%-22s %s\n", s.Name, s.Description)
	}
}

func cmdDescribe(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: scenario describe <name>")
		os.Exit(2)
	}
	s, ok := scenario.Lookup(args[0])
	if !ok {
		fmt.Fprintf(os.Stderr, "scenario: unknown scenario %q (have: %v)\n", args[0], scenario.Names())
		os.Exit(1)
	}
	fmt.Printf("%s\n\n%s\n\n", s.Name, s.Description)
	fmt.Println("peers:")
	for i, p := range s.Peers {
		role := "backup"
		if i == 0 {
			role = "primary"
		}
		size := "full table"
		if p.Prefixes > 0 {
			size = fmt.Sprintf("%d prefixes", p.Prefixes)
		}
		fmt.Printf("  %-6s %-8s %s\n", p.Name, role, size)
	}
	fmt.Println("timeline:")
	for _, e := range s.Events {
		line := fmt.Sprintf("  t=%-8v %-18s", e.At, e.Kind)
		if e.Peer != "" {
			line += " peer=" + e.Peer
		}
		if e.Hold > 0 {
			line += fmt.Sprintf(" hold=%v", e.Hold)
		}
		if e.Fraction > 0 {
			line += fmt.Sprintf(" fraction=%g", e.Fraction)
		}
		if e.Detection != "" {
			line += fmt.Sprintf(" detection=%s", e.Detection)
		}
		fmt.Println(line)
	}
	if len(s.PrefixSweep) > 0 {
		fmt.Printf("prefix sweep: %v\n", s.PrefixSweep)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	mode := fs.String("mode", "both", "both|standalone|supercharged")
	prefixes := fs.Int("prefixes", 0, "table size (0 = spec default or sweep)")
	flows := fs.Int("flows", 0, "probed flows per run (0 = default 100)")
	seed := fs.Int64("seed", 1, "RNG seed")
	format := fs.String("format", "json", "json|csv|table")
	quiet := fs.Bool("q", false, "suppress progress output")
	// Accept both `run <name> --flags` and `run --flags <name>`.
	var name string
	rest := args
	if len(rest) > 0 && len(rest[0]) > 0 && rest[0][0] != '-' {
		name, rest = rest[0], rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		os.Exit(2)
	}
	if name == "" && fs.NArg() > 0 {
		name = fs.Arg(0)
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			os.Exit(2)
		}
	}
	if name == "" {
		fmt.Fprintln(os.Stderr, "usage: scenario run <name> [flags]")
		os.Exit(2)
	}

	opts := scenario.Options{Prefixes: *prefixes, Flows: *flows, Seed: *seed}
	switch *mode {
	case "both", "":
	case "standalone":
		opts.Modes = []sim.Mode{sim.Standalone}
	case "supercharged":
		opts.Modes = []sim.Mode{sim.Supercharged}
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	t0 := time.Now()
	rep, err := scenario.RunNamed(name, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err) // package errors already carry the scenario: prefix
		os.Exit(1)
	}

	switch *format {
	case "json":
		out, err := rep.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(append(out, '\n'))
	case "csv":
		if err := rep.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
			os.Exit(1)
		}
	case "table":
		fmt.Print(rep.RenderTable())
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown format %q\n", *format)
		os.Exit(2)
	}
	if !*quiet {
		if hl := rep.Headline(); hl != "" && len(rep.Runs) > 1 {
			fmt.Fprintf(os.Stderr, "\nworst-case data-plane convergence by table size:\n%s", hl)
		}
		fmt.Fprintf(os.Stderr, "(%d runs in %v)\n", len(rep.Runs), time.Since(t0).Round(time.Millisecond))
	}
}
