// Command feedgen generates a synthetic full-table BGP feed (the RIPE RIS
// stand-in) and either prints it or serves it as a BGP speaker — handy as
// the "provider" end of a supercharged deployment.
//
//	feedgen -n 500000 -print | head              # dump prefixes
//	feedgen -n 100000 -serve 127.0.0.1:1791 \
//	        -as 65002 -nh 203.0.113.1            # act as provider R2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"

	"supercharged/internal/bgp"
	"supercharged/internal/feed"
)

func main() {
	n := flag.Int("n", 100_000, "number of prefixes")
	seed := flag.Int64("seed", 1, "generator seed")
	doPrint := flag.Bool("print", false, "print prefixes to stdout")
	serve := flag.String("serve", "", "serve the feed as a BGP speaker on this address")
	as := flag.Uint("as", 65002, "local AS when serving")
	peerAS := flag.Uint("peer-as", 0, "expected peer AS (0 accepts any)")
	nh := flag.String("nh", "203.0.113.1", "next-hop (and router id) to announce")
	flag.Parse()

	table := feed.Generate(feed.Config{N: *n, Seed: *seed})
	nhAddr := netip.MustParseAddr(*nh)

	if *doPrint {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, r := range table.Routes {
			tmpl := table.Templates[r.Template]
			fmt.Fprintf(w, "%s via %s as-path [%s]\n", r.Prefix, nhAddr, tmpl.ASPath)
		}
		return
	}
	if *serve == "" {
		log.Fatal("pass -print or -serve")
	}

	l, err := net.Listen("tcp", *serve)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("feedgen: serving %d prefixes as AS%d on %s", *n, *as, *serve)
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go func(conn net.Conn) {
			sess := bgp.NewSession(bgp.SessionConfig{
				LocalAS: uint32(*as), LocalID: nhAddr,
				PeerAS: uint32(*peerAS),
				Logf:   log.Printf,
				OnEstablished: func() {
					log.Printf("feedgen: session up, pushing table")
				},
			})
			go func() {
				if err := sess.WaitEstablished(30_000_000_000); err != nil {
					return
				}
				ups, err := table.Updates(uint32(*as), nhAddr, sess.Codec())
				if err != nil {
					log.Printf("feedgen: %v", err)
					return
				}
				for _, u := range ups {
					if err := sess.Send(u); err != nil {
						log.Printf("feedgen: send: %v", err)
						return
					}
				}
				log.Printf("feedgen: table pushed (%d messages)", len(ups))
			}()
			sess.Accept(conn)
		}(conn)
	}
}
