// Command feedgen generates a synthetic full-table BGP feed (the RIPE RIS
// stand-in) and either prints it, serves it as a BGP speaker, or renders
// it as an MRT TABLE_DUMP_V2 dump. It can also start from a real dump
// instead of the generator (-from-mrt) and cut it down (-sample) — the
// workflow that produced the committed testdata/ris-sample.mrt fixture.
//
//	feedgen -n 500000 -print | head              # dump prefixes
//	feedgen -n 100000 -serve 127.0.0.1:1791 \
//	        -as 65002 -nh 203.0.113.1            # act as provider R2
//	feedgen -n 50000 -peers 2 \
//	        -mrt testdata/ris-sample.mrt         # author an MRT fixture
//	feedgen -from-mrt bview.20150801.mrt.gz \
//	        -sample 50000 -mrt sample.mrt        # sample a real RIS dump
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"

	"supercharged/internal/bgp"
	"supercharged/internal/feed"
)

func main() {
	n := flag.Int("n", 100_000, "number of prefixes")
	seed := flag.Int64("seed", 1, "generator seed")
	doPrint := flag.Bool("print", false, "print prefixes to stdout")
	serve := flag.String("serve", "", "serve the feed as a BGP speaker on this address")
	as := flag.Uint("as", 65002, "local AS when serving")
	peerAS := flag.Uint("peer-as", 0, "expected peer AS (0 accepts any)")
	nh := flag.String("nh", "203.0.113.1", "next-hop (and router id) to announce")
	mrtOut := flag.String("mrt", "", "write the table as an MRT TABLE_DUMP_V2 dump to this file")
	fromMRT := flag.String("from-mrt", "", "load the table from this MRT dump (plain or .gz) instead of generating")
	sample := flag.Int("sample", 0, "deterministically subsample the table to this many routes (0 = all)")
	peers := flag.Int("peers", 1, "peer count for -mrt output (lab providers R2, R3, ...)")
	flag.Parse()

	var table *feed.Table
	if *fromMRT != "" {
		f, err := os.Open(*fromMRT)
		if err != nil {
			log.Fatal(err)
		}
		dump, err := feed.FromMRT(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		table = dump.Table
		log.Printf("feedgen: loaded %d routes (%d templates, %d peers) from %s",
			table.Len(), len(table.Templates), len(dump.Peers), *fromMRT)
	} else {
		table = feed.Generate(feed.Config{N: *n, Seed: *seed})
	}
	if *sample > 0 {
		table = table.Sample(*sample)
	}
	nhAddr := netip.MustParseAddr(*nh)

	if *mrtOut != "" {
		var mrtPeers []feed.MRTPeer
		for i := 0; i < *peers; i++ {
			// The lab's provider addressing: R2 = 203.0.113.1 AS 65002,
			// R3 = 203.0.113.2 AS 65003, ...
			mrtPeers = append(mrtPeers, feed.MRTPeer{
				Addr: netip.AddrFrom4([4]byte{203, 0, 113, byte(i + 1)}),
				AS:   uint32(65002 + i),
			})
		}
		f, err := os.Create(*mrtOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := table.WriteMRT(f, mrtPeers); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("feedgen: wrote %d routes x %d peers to %s", table.Len(), len(mrtPeers), *mrtOut)
		return
	}

	if *doPrint {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, r := range table.Routes {
			tmpl := table.Templates[r.Template]
			fmt.Fprintf(w, "%s via %s as-path [%s]\n", r.Prefix, nhAddr, tmpl.ASPath)
		}
		return
	}
	if *serve == "" {
		log.Fatal("pass -print or -serve")
	}

	l, err := net.Listen("tcp", *serve)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("feedgen: serving %d prefixes as AS%d on %s", table.Len(), *as, *serve)
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Fatal(err)
		}
		go func(conn net.Conn) {
			sess := bgp.NewSession(bgp.SessionConfig{
				LocalAS: uint32(*as), LocalID: nhAddr,
				PeerAS: uint32(*peerAS),
				Logf:   log.Printf,
				OnEstablished: func() {
					log.Printf("feedgen: session up, pushing table")
				},
			})
			go func() {
				if err := sess.WaitEstablished(30_000_000_000); err != nil {
					return
				}
				ups, err := table.Updates(uint32(*as), nhAddr, sess.Codec())
				if err != nil {
					log.Printf("feedgen: %v", err)
					return
				}
				for _, u := range ups {
					if err := sess.Send(u); err != nil {
						log.Printf("feedgen: send: %v", err)
						return
					}
				}
				log.Printf("feedgen: table pushed (%d messages)", len(ups))
			}()
			sess.Accept(conn)
		}(conn)
	}
}
